"""Protocol exploration driver: strategy enumeration, reports, replay.

``explore_protocol`` is the one entry point behind ``repro explore``: it
builds the explorer model(s) for a protocol — reliable broadcast, binary
agreement, atomic broadcast, or the full end-to-end name service — runs
one :class:`~repro.explore.dpor.DporEngine` per Byzantine strategy, and
folds the results into an :class:`ExploreReport` that knows how to
render itself as text, JSON findings (rule ``X701``), or SARIF via the
existing lint plumbing.

Every violation is minimized (:func:`minimize_violation`) and packaged
as a replayable :class:`~repro.explore.schedule.ScheduleFile`;
``replay_file`` rebuilds the identical model from such a file and
re-executes it, so a CI counterexample reproduces bit-for-bit locally.

The end-to-end model (:class:`E2eModel`) drives the *real* simulated
deployment: it installs a delivery hook on the sim network that parks
every transmitted message in a channel frontier (after byte accounting),
letting the engine choose delivery order while the kernel's
``run_available`` drains each choice's zero-delay cascade.  The full
service state graph is far too large for exhaustive search, so e2e
exploration is always delay-bounded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.explore.dpor import (
    Choice,
    DporEngine,
    ExploreResult,
    StepMeta,
    Violation,
    replay_schedule,
)
from repro.explore.frontier import ChannelFrontier
from repro.explore.models import (
    AbaModel,
    AbcModel,
    ByzStrategy,
    RbcModel,
    aba_strategies,
    abc_strategies,
    rbc_strategies,
    rbc_voter_strategies,
)
from repro.explore.schedule import (
    ScheduleFile,
    load_schedule,
    minimize_violation,
    transcript_hash,
)
from repro.lint.framework import Finding

PROTOCOLS = ("rbc", "aba", "abc", "e2e")

#: Where a protocol-level violation anchors in the source tree.
_PROTOCOL_SOURCE = {
    "rbc": "src/repro/broadcast/rbc.py",
    "aba": "src/repro/broadcast/aba.py",
    "abc": "src/repro/broadcast/abc.py",
    "e2e": "src/repro/core/service.py",
}


# ---------------------------------------------------------------------------
# End-to-end model over the real deployment
# ---------------------------------------------------------------------------


class _ParkHook:
    """Network delivery hook parking every message in the frontier.

    A callable object (not a closure) so its identity survives model
    rebuilds; it reads the owning model's current step index to record
    the happens-before "sent by" edge.
    """

    def __init__(self, model: "E2eModel") -> None:
        self.model = model

    def __call__(self, src: int, dest: int, payload: Any) -> bool:
        self.model.state_frontier.push(
            src, dest, payload, sent_by=self.model.current_index
        )
        return True


class _OpSink:
    """Records completed client operations by plan index."""

    def __init__(self, results: List[Optional[Any]], index: int) -> None:
        self.results = results
        self.index = index

    def __call__(self, completed: Any) -> None:
        self.results[self.index] = completed


class E2eModel:
    """Explorer model over the full :class:`ReplicatedNameService`.

    Choices are ``(src, dest)`` network-channel picks exactly as in the
    message models; protocol timeouts live in the sim kernel's heap and
    fire only at frontier quiescence, earliest first, as barrier steps.
    The service arms closures over live objects everywhere, so the model
    is replay-restored (``snapshot()`` is None) and every ``reset()``
    rebuilds the deployment — expensive, which is one more reason e2e
    runs delay-bounded.
    """

    sids_isolated = False
    step_cap = 2_000

    def __init__(
        self,
        n: int,
        t: int,
        *,
        mode: str = "digest",
        strategy: str = "honest",
        ops: Sequence[Tuple[str, str]] = (("read", "www"),),
        timer_cap: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        self.n = n
        self.t = t
        self.mode = mode
        self.strategy = strategy
        self.ops = list(ops)
        self.timer_cap = timer_cap if timer_cap is not None else 8 * n
        self.seed = seed
        self.service: Any = None
        self.state_frontier = ChannelFrontier()
        self.results: List[Optional[Any]] = []
        self.current_index = -1
        self.steps = 0
        self.timer_fires = 0
        self.bound_hit = False

    # -- construction ------------------------------------------------------

    def _build_service(self) -> Any:
        from repro.chaos.scenarios import _deployment_for
        from repro.config import ServiceConfig
        from repro.core.faults import CorruptionMode
        from repro.core.service import ReplicatedNameService

        config = ServiceConfig(
            n=self.n,
            t=self.t,
            broadcast_mode=self.mode,
            # Short protocol timers: the explorer fires them symbolically
            # (ordering matters, absolute durations do not).
            abc_timeout=1.0,
            client_timeout=5.0,
        )
        service = ReplicatedNameService(
            config,
            deployment=_deployment_for(config),
            seed=self.seed,
        )
        if self.strategy == "crash-follower":
            # Crash a non-gateway replica: the protocol must stay live
            # and consistent with n - 1 >= n - t participants.
            service.corrupt(self.n - 1, CorruptionMode.CRASH)
        elif self.strategy not in ("", "honest"):
            raise ValueError(f"unknown e2e strategy {self.strategy!r}")
        return service

    def reset(self) -> None:
        from repro.dns.constants import TYPE_A
        from repro.dns.name import Name

        self.state_frontier = ChannelFrontier()
        self.current_index = -1
        self.steps = 0
        self.timer_fires = 0
        self.bound_hit = False
        if self.service is not None:
            self.service.close()
        self.service = self._build_service()
        self.service.net.delivery_hook = _ParkHook(self)
        self.results = [None] * len(self.ops)
        for i, (kind, name_text) in enumerate(self.ops):
            name = Name.from_text(f"{name_text}.example.com.")
            sink = _OpSink(self.results, i)
            if kind == "read":
                self.service.client.query(name, TYPE_A, sink)
            elif kind == "delete":
                self.service.client.delete_name(name, sink)
            else:
                raise ValueError(f"unknown e2e op kind {kind!r}")
        self._drain()

    # -- kernel draining ---------------------------------------------------

    def _drain(self) -> None:
        """Process every kernel event inside the busy-CPU horizon.

        After a delivery the receiving node is CPU-busy for a while and
        the kernel may have re-parked follow-on work at ``busy_until``;
        protocol timeouts sit much further out.  Draining up to the
        (moving) busy horizon runs the whole synchronous cascade without
        letting a timeout fire out of turn.
        """
        sim = self.service.net.sim
        for _ in range(10_000):
            horizon = max(
                [sim.now] + [node.busy_until for node in self.service.net.nodes]
            )
            if sim.run_available(horizon=horizon) == 0:
                return
        raise RuntimeError("e2e cascade did not settle")  # pragma: no cover

    # -- engine interface --------------------------------------------------

    def enabled(self) -> List[Choice]:
        if self.steps >= self.step_cap:
            self.bound_hit = True
            return []
        return list(self.state_frontier.enabled())

    def execute(self, choice: Choice, index: int) -> StepMeta:
        key = choice  # (src, dest)
        fifo_pred = self.state_frontier.fifo_predecessor(key)
        msg = self.state_frontier.pop(key, index)
        self.current_index = index
        src, dest = key
        try:
            self.service.net.nodes[dest]._deliver(src, msg.payload)
            self._drain()
        finally:
            self.current_index = -1
        self.steps += 1
        return StepMeta(
            choice=choice,
            dest=dest,
            sent_by=msg.sent_by,
            fifo_pred=fifo_pred,
            label=f"{src}->{dest}:{type(msg.payload).__name__}",
        )

    def peek(self, choice: Choice) -> StepMeta:
        return StepMeta(choice=choice, dest=choice[1])

    def fire_next_timer(self, index: int) -> Optional[StepMeta]:
        if self.timer_fires >= self.timer_cap:
            self.bound_hit = True
            return None
        sim = self.service.net.sim
        when = sim.next_event_time()
        if when is None:
            return None
        self.timer_fires += 1
        self.current_index = index
        try:
            sim.step()
            self._drain()
        finally:
            self.current_index = -1
        return StepMeta(
            choice=("timer", self.timer_fires),
            dest=-1,
            barrier=True,
            label=f"timer@{when:.3f}",
        )

    def snapshot(self) -> Optional[object]:
        return None  # live closures everywhere; replay from reset()

    def restore(self, snap: object) -> None:  # pragma: no cover - unused
        raise RuntimeError("E2eModel restores by replay, not snapshot")

    # -- invariants --------------------------------------------------------

    def check_now(self) -> List[str]:
        """Total-order prefix consistency of executed request logs.

        Zone digests legitimately diverge transiently (one replica has
        executed an update the other has not seen yet), but the executed
        request *sequences* must always be prefix-consistent — that is
        atomic broadcast's safety half, valid at every intermediate
        state.
        """
        logs = [
            tuple(r.delivered_requests) for r in self.service.honest_replicas()
        ]
        problems: List[str] = []
        for i in range(len(logs)):
            for j in range(i + 1, len(logs)):
                a, b = logs[i], logs[j]
                k = min(len(a), len(b))
                if a[:k] != b[:k]:
                    problems.append(
                        "G1: executed request logs are not prefix-consistent: "
                        f"{a[:k]} vs {b[:k]}"
                    )
        return problems

    def check_leaf(self) -> List[str]:
        from repro.chaos.invariants import InvariantReport, check_g1, check_g3

        problems = self.check_now()
        report = InvariantReport()
        check_g1(self.service, report)
        check_g3(self.service, self.results, report)
        problems.extend(report.violations)
        if not self.bound_hit and self.service.net.sim.next_event_time() is None:
            missing = [
                self.ops[i] for i, r in enumerate(self.results) if r is None
            ]
            if missing:
                problems.append(f"liveness: client ops never completed: {missing}")
        return problems

    def fingerprint(self) -> str:
        import hashlib

        h = hashlib.sha256()
        for replica in self.service.honest_replicas():
            h.update(replica.zone.digest())
            for rid in replica.delivered_requests:
                h.update(rid.encode())
                h.update(b";")
            h.update(b"|")
        return h.hexdigest()[:16]


# ---------------------------------------------------------------------------
# Strategy enumeration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StrategySpec:
    """One (strategy name, model factory) exploration unit."""

    name: str
    factory: Callable[[], Any]


def _rbc_specs(n: int, t: int, mode: str) -> List[StrategySpec]:
    sid = "s"
    payload = b"alpha"
    specs = [
        StrategySpec(
            "honest",
            lambda: RbcModel(n, t, mode=mode, byz=None, sender=0, sid=sid),
        )
    ]
    byz_sender = 0
    honest = [i for i in range(n) if i != byz_sender]
    for strat in rbc_strategies(n, t, sid, mode, byz_sender, honest):
        specs.append(
            StrategySpec(
                f"sender-{strat.name}",
                lambda s=strat: RbcModel(
                    n, t, mode=mode, byz=byz_sender, strategy=s, sender=byz_sender, sid=sid
                ),
            )
        )
    byz_voter = n - 1
    voters = [i for i in range(n) if i != byz_voter]
    for strat in rbc_voter_strategies(n, t, sid, mode, byz_voter, voters, payload):
        specs.append(
            StrategySpec(
                f"voter-{strat.name}",
                lambda s=strat: RbcModel(
                    n, t, mode=mode, byz=byz_voter, strategy=s, sender=0,
                    payload=payload, sid=sid,
                ),
            )
        )
    return specs


def _aba_specs(n: int, t: int) -> List[StrategySpec]:
    sid = "s"
    byz = 0
    honest = [i for i in range(n) if i != byz]
    # Unanimous proposals keep the round-0 coin irrelevant and the state
    # space exhaustively explorable; the split strategies attack exactly
    # that unanimity.
    proposals = {i: 1 for i in honest}
    specs = []
    for strat in aba_strategies(n, t, sid, byz, honest):
        specs.append(
            StrategySpec(
                strat.name,
                lambda s=strat: AbaModel(
                    n, t, byz=byz, strategy=s, proposals=dict(proposals), sid=sid
                ),
            )
        )
    specs.append(
        StrategySpec(
            "honest-mixed",
            lambda: AbaModel(n, t, byz=None, proposals={i: i % 2 for i in range(n)}, sid=sid),
        )
    )
    return specs


def _abc_specs(n: int, t: int, mode: str) -> List[StrategySpec]:
    payloads = (b"req-a",)
    byz = 0  # replica 0 is the initial leader: the interesting corruption
    honest = [i for i in range(n) if i != byz]
    specs = [
        StrategySpec(
            "honest",
            lambda: AbcModel(n, t, dissemination=mode, payloads=payloads),
        )
    ]
    for strat in abc_strategies(n, t, byz, honest, [b"req-a", b"req-b"]):
        specs.append(
            StrategySpec(
                f"leader-{strat.name}",
                lambda s=strat: AbcModel(
                    n, t, dissemination=mode, byz=byz, strategy=s,
                    payloads=payloads,
                ),
            )
        )
    return specs


def _e2e_specs(n: int, t: int, mode: str) -> List[StrategySpec]:
    return [
        StrategySpec(
            "honest", lambda: E2eModel(n, t, mode=mode, strategy="honest")
        ),
        StrategySpec(
            "crash-follower",
            lambda: E2eModel(n, t, mode=mode, strategy="crash-follower"),
        ),
    ]


def strategy_specs(
    protocol: str, mode: str, n: int, t: int
) -> List[StrategySpec]:
    """All Byzantine/fault strategies explored for ``protocol`` at (n, t)."""
    if protocol == "rbc":
        return _rbc_specs(n, t, mode or "full")
    if protocol == "aba":
        return _aba_specs(n, t)
    if protocol == "abc":
        return _abc_specs(n, t, mode or "digest")
    if protocol == "e2e":
        return _e2e_specs(n, t, mode or "digest")
    raise ValueError(f"unknown protocol {protocol!r}; choose from {PROTOCOLS}")


def build_model(
    protocol: str, mode: str, n: int, t: int, strategy: str
) -> Any:
    """Rebuild the exact model a schedule file was recorded against."""
    for spec in strategy_specs(protocol, mode, n, t):
        if spec.name == strategy:
            return spec.factory()
    raise ValueError(
        f"unknown strategy {strategy!r} for protocol {protocol!r}"
    )


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------


@dataclass
class StrategyRun:
    """One engine run: a strategy explored under one budget."""

    strategy: str
    result: ExploreResult
    wall_s: float


@dataclass
class ExploreReport:
    """Aggregated exploration outcome for one protocol configuration."""

    protocol: str
    mode: str
    cluster: Tuple[int, int]
    runs: List[StrategyRun] = field(default_factory=list)
    counterexamples: List[ScheduleFile] = field(default_factory=list)

    @property
    def schedules(self) -> int:
        return sum(r.result.schedules for r in self.runs)

    @property
    def naive_lower_bound(self) -> int:
        return sum(r.result.naive_lower_bound for r in self.runs)

    @property
    def complete(self) -> bool:
        return all(r.result.complete for r in self.runs)

    @property
    def violations(self) -> List[Violation]:
        return [v for r in self.runs for v in r.result.violations]

    @property
    def ok(self) -> bool:
        return not self.violations

    def findings(self) -> List[Finding]:
        """One ``X701`` finding per distinct (strategy, kind, fingerprint)."""
        path = _PROTOCOL_SOURCE[self.protocol]
        out: List[Finding] = []
        seen = set()
        for sf in self.counterexamples:
            key = (sf.strategy, sf.kind, sf.fingerprint)
            if key in seen:
                continue
            seen.add(key)
            detail = "; ".join(sf.messages[:2])
            out.append(
                Finding(
                    rule="X701",
                    path=path,
                    line=1,
                    col=0,
                    message=(
                        f"invariant violated under systematic exploration of "
                        f"{self.protocol}/{self.mode or 'default'} at "
                        f"(n={self.cluster[0]}, t={self.cluster[1]}), "
                        f"strategy {sf.strategy or 'honest'}: {detail} "
                        f"[minimized schedule: {len(sf.schedule)} steps]"
                    ),
                )
            )
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "mode": self.mode,
            "cluster": list(self.cluster),
            "schedules": self.schedules,
            "naive_lower_bound": self.naive_lower_bound,
            "complete": self.complete,
            "ok": self.ok,
            "runs": [
                {
                    "strategy": r.strategy,
                    "schedules": r.result.schedules,
                    "complete": r.result.complete,
                    "violations": len(r.result.violations),
                    "naive_lower_bound": r.result.naive_lower_bound,
                    "naive_exact": r.result.naive_exact,
                    "reduction_factor": round(r.result.reduction_factor, 2),
                    "steps": r.result.stats.steps,
                    "wall_s": round(r.wall_s, 2),
                }
                for r in self.runs
            ],
            "counterexamples": [
                {
                    "strategy": sf.strategy,
                    "kind": sf.kind,
                    "schedule_length": len(sf.schedule),
                    "fingerprint": sf.fingerprint,
                    "transcript_hash": sf.transcript_hash,
                    "messages": sf.messages,
                }
                for sf in self.counterexamples
            ],
        }

    def summary_lines(self) -> List[str]:
        lines = [
            f"explore {self.protocol}/{self.mode or 'default'} "
            f"(n={self.cluster[0]}, t={self.cluster[1]}): "
            f"{self.schedules} schedules, "
            f"{'complete' if self.complete else 'budget-bounded'}, "
            f"{len(self.violations)} violation(s), "
            f"naive >= {self.naive_lower_bound}"
        ]
        for r in self.runs:
            res = r.result
            lines.append(
                f"  {r.strategy:<24} {res.schedules:>8} schedules  "
                f"{'complete' if res.complete else 'partial':<9} "
                f"naive{'=' if res.naive_exact else '>='}{res.naive_lower_bound:<12} "
                f"viol={len(res.violations)}  {r.wall_s:.1f}s"
            )
        for sf in self.counterexamples:
            lines.append(
                f"  counterexample [{sf.strategy or 'honest'}/{sf.kind}]: "
                f"{len(sf.schedule)} steps, fp={sf.fingerprint}, "
                f"{sf.messages[0] if sf.messages else ''}"
            )
        return lines


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def _package_violation(
    model: Any,
    violation: Violation,
    protocol: str,
    mode: str,
    cluster: Tuple[int, int],
) -> ScheduleFile:
    schedule, messages, fingerprint, digest = minimize_violation(model, violation)
    return ScheduleFile(
        protocol=protocol,
        mode=mode,
        cluster=cluster,
        strategy=violation.strategy,
        schedule=list(schedule),
        kind=violation.kind,
        messages=list(messages),
        fingerprint=fingerprint or violation.fingerprint,
        transcript_hash=digest,
    )


def explore_protocol(
    protocol: str,
    *,
    mode: str = "",
    n: int = 4,
    t: int = 1,
    strategies: Optional[Sequence[str]] = None,
    bound: Optional[int] = None,
    max_schedules: Optional[int] = None,
    max_steps: Optional[int] = None,
    deadline_s: Optional[float] = None,
    stop_on_first: bool = False,
    minimize: bool = True,
    use_dpor: bool = True,
    snapshot_interval: int = 4,
    max_counterexamples: int = 4,
) -> ExploreReport:
    """Explore every (selected) strategy of ``protocol`` at ``(n, t)``.

    The e2e protocol refuses unbounded exploration: its state graph is
    the whole deployment, so a delay ``bound`` is mandatory there.
    """
    if protocol == "e2e" and bound is None:
        raise ValueError("e2e exploration must be delay-bounded (pass bound=...)")
    specs = strategy_specs(protocol, mode, n, t)
    if strategies is not None:
        wanted = set(strategies)
        unknown = wanted - {s.name for s in specs}
        if unknown:
            raise ValueError(
                f"unknown strategies {sorted(unknown)}; "
                f"available: {[s.name for s in specs]}"
            )
        specs = [s for s in specs if s.name in wanted]
    report = ExploreReport(protocol=protocol, mode=mode, cluster=(n, t))
    for spec in specs:
        model = spec.factory()
        engine = DporEngine(
            model,
            use_dpor=use_dpor,
            bound=bound,
            max_schedules=max_schedules,
            max_steps=max_steps,
            deadline_s=deadline_s,
            stop_on_first=stop_on_first,
            strategy=spec.name,
            snapshot_interval=snapshot_interval,
        )
        t0 = time.monotonic()
        result = engine.run()
        report.runs.append(
            StrategyRun(spec.name, result, time.monotonic() - t0)
        )
        if minimize:
            for violation in result.violations[:max_counterexamples]:
                report.counterexamples.append(
                    _package_violation(
                        spec.factory(), violation, protocol, mode, (n, t)
                    )
                )
        else:
            for violation in result.violations[:max_counterexamples]:
                report.counterexamples.append(
                    ScheduleFile(
                        protocol=protocol,
                        mode=mode,
                        cluster=(n, t),
                        strategy=violation.strategy,
                        schedule=list(violation.schedule),
                        kind=violation.kind,
                        messages=list(violation.messages),
                        fingerprint=violation.fingerprint,
                    )
                )
        if stop_on_first and result.violations:
            break
    return report


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayOutcome:
    """Result of replaying one schedule file."""

    problems: List[str]
    fingerprint: str
    transcript_hash: str
    reproduced: bool  # violation messages observed again


def replay_file(source: "ScheduleFile | Path | str") -> ReplayOutcome:
    """Rebuild the recorded model and re-execute its schedule."""
    sf = (
        source
        if isinstance(source, ScheduleFile)
        else load_schedule(Path(source))
    )
    n, t = sf.cluster
    model = build_model(sf.protocol, sf.mode, n, t, sf.strategy)
    problems, fingerprint, labels = replay_schedule(
        model, list(sf.schedule), complete=True
    )
    return ReplayOutcome(
        problems=list(problems),
        fingerprint=fingerprint,
        transcript_hash=transcript_hash(labels),
        reproduced=bool(problems) if sf.kind else not problems,
    )
