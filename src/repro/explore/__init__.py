"""Systematic concurrency exploration (DESIGN.md §5j).

A stateless model checker for the replicated protocols: instead of the
chaos harness's 50 random seeds, ``repro explore`` *enumerates* message
delivery interleavings at small ``(n, t)`` and proves the paper's safety
goals over every schedule.  Dynamic partial-order reduction (sleep sets +
backtrack sets over a commutativity oracle) keeps the enumeration a small
fraction of the naive schedule count; violating schedules are minimized
and written as replayable files.
"""

from repro.explore.confirm import EXPLORE_RULES, RaceHarness, confirm_races
from repro.explore.dpor import (
    DporEngine,
    ExploreResult,
    StepMeta,
    Violation,
)
from repro.explore.frontier import (
    BROADCAST,
    ChannelFrontier,
    ModelTimer,
    SchedulePoint,
)
from repro.explore.runner import (
    ExploreReport,
    explore_protocol,
    replay_file,
    strategy_specs,
)
from repro.explore.schedule import (
    ScheduleFile,
    load_schedule,
    minimize_violation,
    save_schedule,
)

__all__ = [
    "BROADCAST",
    "ChannelFrontier",
    "DporEngine",
    "EXPLORE_RULES",
    "ExploreReport",
    "ExploreResult",
    "ModelTimer",
    "RaceHarness",
    "SchedulePoint",
    "ScheduleFile",
    "StepMeta",
    "Violation",
    "confirm_races",
    "explore_protocol",
    "load_schedule",
    "minimize_violation",
    "replay_file",
    "save_schedule",
    "strategy_specs",
]
