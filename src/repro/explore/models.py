"""Explorer models: the real protocol objects under scheduler control.

Each model wraps unmodified protocol instances (``ReliableBroadcast``,
``BinaryAgreement``, ``AtomicBroadcast``) behind the engine's duck-typed
interface: ``enabled()`` exposes the deliverable-event frontier,
``execute((src, dest), i)`` delivers one head-of-channel message into the
real handler and routes whatever it emits back into the frontier, and the
``check_*`` hooks evaluate the protocol-level G1/G2/G3 invariants from
:mod:`repro.chaos.invariants` over plain delivered/decided data.

Cryptography is replaced by structure-preserving stubs (``StubCoin``,
``StubAuthPlane``): signatures become keyed hashes and the common coin a
deterministic hash of ``(sid, round)``, so the *message flow* — quorum
counting, re-entrancy through the coin callback, signed epoch finals —
is exactly the production code path while a single delivery costs
microseconds instead of RSA milliseconds.  The coin stays deterministic
per (sid, round), which exploration requires: the schedule must be the
only source of nondeterminism.

Byzantine replicas are *absorbing message palettes*: each enumerated
strategy fixes the corrupt replica's entire outbound behaviour as a set
of pre-enqueued messages (equivocating sends, split votes, silence), and
inbound messages to it are dropped.  That is sound for safety checking —
a Byzantine node's outputs never depend on its inputs in any way the
honest replicas can distinguish beyond the messages themselves — and it
keeps the choice space finite.

State restore: ``RbcModel`` and ``AbaModel`` hold all mutable state in
one container that deep-copies correctly (callbacks are callable objects
or bound methods — ``copy.deepcopy`` rebinds bound methods through its
memo, but treats plain closures as atomic, which would leave them
pointing at the *original* state).  ``AtomicBroadcast`` arms timers over
``lambda: self._on_timeout(...)`` closures, so ``AbcModel`` opts out of
snapshots (``snapshot() -> None``) and the engine replays the choice
prefix from ``reset()`` instead.
"""

from __future__ import annotations

import copy
import hashlib
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.broadcast.aba import BinaryAgreement
from repro.broadcast.abc import AtomicBroadcast, derive_request_id
from repro.broadcast.messages import (
    AbaAux,
    AbaDecided,
    AbaEst,
    AbcCommit,
    AbcComplain,
    AbcOrder,
    CoinShare,
    RbcEcho,
    RbcEchoDigest,
    RbcReady,
    RbcSend,
)
from repro.broadcast.rbc import ReliableBroadcast, RbcInstance
from repro.chaos.invariants import (
    check_agreement_decisions,
    check_agreement_termination,
    check_broadcast_agreement,
    check_broadcast_totality,
    check_broadcast_validity,
    check_total_order,
)
from repro.explore.dpor import StepMeta
from repro.explore.footprints import FootprintOracle, oracle_for
from repro.explore.frontier import (
    BROADCAST,
    ChannelFrontier,
    ChannelKey,
    TimerRail,
)

Outgoing = Tuple[int, object]


def _sha(data: bytes) -> bytes:
    return hashlib.sha256(data).digest()


# --------------------------------------------------------------------------
# Deepcopy-safe callback objects
# --------------------------------------------------------------------------


class DeliveryLog:
    """Per-replica RBC delivery recorder; a callable object (not a
    closure) so snapshots deep-copy it consistently with the protocol."""

    def __init__(self) -> None:
        self.delivered: Dict[str, bytes] = {}
        self.duplicates: List[str] = []

    def __call__(self, sid: str, payload: bytes) -> None:
        if sid in self.delivered:
            self.duplicates.append(sid)
            return
        self.delivered[sid] = payload

    def get(self, sid: str) -> Optional[bytes]:
        return self.delivered.get(sid)


class DecisionLog:
    """Per-replica ABA decision recorder (``on_decide`` callback)."""

    def __init__(self) -> None:
        self.decisions: Dict[str, int] = {}
        self.conflicts: List[str] = []

    def __call__(self, sid: str, value: int) -> None:
        if sid in self.decisions and self.decisions[sid] != value:
            self.conflicts.append(sid)
            return
        self.decisions[sid] = value

    def get(self, sid: str) -> Optional[int]:
        return self.decisions.get(sid)


class AbcDeliveryLog:
    """Per-replica atomic-broadcast delivery recorder.

    Keeps payloads so integrity (rid == hash of payload) is checkable;
    order checking uses the replica's own ``delivered_log``.
    """

    def __init__(self) -> None:
        self.order: List[Tuple[str, bytes]] = []

    def __call__(self, rid: str, payload: bytes) -> None:
        self.order.append((rid, payload))


# --------------------------------------------------------------------------
# Crypto stubs (structure-preserving, deterministic, fast)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class StubShare:
    """Stands in for a threshold-signature share inside ``CoinShare``.

    Carries the 1-based signer index exactly as the real
    ``SignatureShare`` does, so the stub coin can enforce the same
    "a replica may only contribute its own share" rule."""

    index: int


class StubCoin:
    """Drop-in for ``CommonCoin``: same wire messages and callback
    re-entrancy, but the value is a deterministic hash of (sid, round).

    The synchronous completion path is preserved: releasing our own
    share may reach the t+1 threshold immediately, re-entering the ABA
    round logic through ``on_value`` — the exact re-entrancy window the
    PR-2 coin bug lived in.
    """

    def __init__(self, t: int, me: int, on_value: object) -> None:
        self.t = t
        self.me = me
        self._on_value = on_value
        self._shares: Dict[Tuple[str, int], set] = {}
        self._values: Dict[Tuple[str, int], int] = {}
        self._requested: set = set()

    @staticmethod
    def toss(sid: str, round_: int) -> int:
        return _sha(f"coin/{sid}/{round_}".encode())[0] & 1

    def value(self, sid: str, round_: int) -> Optional[int]:
        return self._values.get((sid, round_))

    def request(self, sid: str, round_: int) -> List[Outgoing]:
        key = (sid, round_)
        if key in self._requested:
            return []
        self._requested.add(key)
        share = StubShare(self.me + 1)
        out: List[Outgoing] = [(BROADCAST, CoinShare(sid, round_, share))]
        self._accept(sid, round_, self.me, share)
        return out

    def on_message(self, sender: int, msg: object) -> List[Outgoing]:
        if isinstance(msg, CoinShare):
            self._accept(msg.sid, msg.round, sender, msg.share)
        return []

    def _accept(self, sid: str, round_: int, sender: int, share: object) -> None:
        key = (sid, round_)
        if key in self._values:
            return
        index = getattr(share, "index", None)
        if index != sender + 1:
            return  # a replica may only contribute its own share
        pool = self._shares.setdefault(key, set())
        pool.add(index)
        if len(pool) < self.t + 1:
            return
        self._values[key] = self.toss(sid, round_)
        self._on_value(sid, round_, self._values[key])


class StubCoinPublic:
    def __init__(self, t: int) -> None:
        self.t = t


class StubCoinKey:
    """Satisfies ``CommonCoin.__init__`` (which only reads ``.public``);
    the constructed real coin is immediately replaced by a StubCoin."""

    def __init__(self, t: int) -> None:
        self.public = StubCoinPublic(t)


def _stub_sig(signer: int, data: bytes) -> bytes:
    return _sha(b"stub-sig|%d|" % signer + data)


class StubKey:
    """Keyed-hash stand-in for an RSA key pair (both halves)."""

    def __init__(self, index: int) -> None:
        self.index = index

    def sign(self, data: bytes) -> bytes:
        return _stub_sig(self.index, data)

    def is_valid(self, data: bytes, signature: bytes) -> bool:
        return signature == _stub_sig(self.index, data)


class StubAuthPlane:
    """``AuthPlane``-shaped authenticator plane over keyed hashes."""

    def __init__(self, me: int, publics: Sequence[StubKey]) -> None:
        self.me = me
        self.auth_public = list(publics)
        self.executor = None

    def sign(self, data: bytes) -> bytes:
        return _stub_sig(self.me, data)

    def verify(self, signer: int, data: bytes, signature: bytes) -> bool:
        return signature == _stub_sig(signer, data)

    def verify_many(self, items: List[Tuple[object, bytes, bytes]]) -> List[bool]:
        return [key.is_valid(data, sig) for key, data, sig in items]


def install_stub_coin(ba: BinaryAgreement, t: int, me: int) -> StubCoin:
    """Replace a ``BinaryAgreement``'s real coin with the stub.

    Must run before any ABA instance is created: instances capture
    ``ba.coin`` at construction time.
    """
    stub = StubCoin(t, me, ba._coin_ready)
    ba.coin = stub  # type: ignore[assignment]
    return stub


# --------------------------------------------------------------------------
# Byzantine strategy palettes
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ByzStrategy:
    """One fixed outbound behaviour of the corrupt replica.

    ``messages`` are pre-enqueued into the frontier at ``reset()``:
    ``(dest, msg)`` with ``dest == BROADCAST`` expanding to every honest
    replica.  The adversary still controls *when* each lands — that is
    the schedule, which the explorer enumerates.
    """

    name: str
    messages: Tuple[Tuple[int, object], ...] = ()


def _split(honest: Sequence[int]) -> Tuple[List[int], List[int]]:
    mid = (len(honest) + 1) // 2
    return list(honest[:mid]), list(honest[mid:])


def rbc_strategies(
    n: int,
    t: int,
    sid: str,
    mode: str,
    byz: int,
    honest: Sequence[int],
    payload_a: bytes = b"alpha",
    payload_b: bytes = b"bravo",
) -> List[ByzStrategy]:
    """Byzantine-*sender* palettes for one RBC instance.

    Equivocation splits the honest replicas into two camps and feeds each
    camp a consistent (SEND, ECHO, READY) story for a different payload —
    the strongest single-instance attack available to a corrupt sender,
    and exactly the one the n-t echo quorum must defeat.
    """
    group_a, group_b = _split(honest)
    digest_a, digest_b = _sha(payload_a), _sha(payload_b)

    def echo(payload: bytes, digest: bytes) -> object:
        if mode == "full":
            return RbcEcho(sid, payload)
        return RbcEchoDigest(sid, digest)

    def camp(dests: Sequence[int], payload: bytes, digest: bytes) -> List[Outgoing]:
        out: List[Outgoing] = []
        for dest in dests:
            out.append((dest, RbcSend(sid, payload)))
            out.append((dest, echo(payload, digest)))
            out.append((dest, RbcReady(sid, digest)))
        return out

    strategies = [ByzStrategy("silent")]
    strategies.append(
        ByzStrategy(
            "equivocate-split",
            tuple(
                camp(group_a, payload_a, digest_a)
                + camp(group_b, payload_b, digest_b)
            ),
        )
    )
    strategies.append(
        ByzStrategy(
            "withhold-partial",
            tuple(
                [(dest, RbcSend(sid, payload_a)) for dest in group_a]
                + [(dest, echo(payload_a, digest_a)) for dest in group_a]
            ),
        )
    )
    # Vote-only lies without any SEND: tries to drive the ready
    # amplification path to deliver something nobody can fetch.
    strategies.append(
        ByzStrategy(
            "phantom-votes",
            tuple(
                [(dest, echo(payload_b, digest_b)) for dest in honest]
                + [(dest, RbcReady(sid, digest_b)) for dest in honest]
            ),
        )
    )
    return strategies


def rbc_voter_strategies(
    n: int,
    t: int,
    sid: str,
    mode: str,
    byz: int,
    honest: Sequence[int],
    payload: bytes,
    wrong: bytes = b"forged",
) -> List[ByzStrategy]:
    """Byzantine-*voter* palettes (the sender is honest): double votes and
    forged readies against the honest payload."""
    digest, wrong_digest = _sha(payload), _sha(wrong)

    def echo(p: bytes, d: bytes) -> object:
        if mode == "full":
            return RbcEcho(sid, p)
        return RbcEchoDigest(sid, d)

    return [
        ByzStrategy("silent"),
        ByzStrategy(
            "double-vote",
            tuple(
                [(dest, echo(wrong, wrong_digest)) for dest in honest]
                + [(dest, RbcReady(sid, wrong_digest)) for dest in honest]
            ),
        ),
        ByzStrategy(
            "early-ready",
            tuple((dest, RbcReady(sid, digest)) for dest in honest),
        ),
    ]


def aba_strategies(
    n: int, t: int, sid: str, byz: int, honest: Sequence[int]
) -> List[ByzStrategy]:
    """Byzantine palettes for one ABA instance: split estimates, split
    AUX votes, and an own coin share (valid under the stub's index rule)."""
    group_a, group_b = _split(honest)
    share = StubShare(byz + 1)
    coin_r0 = [(dest, CoinShare(sid, 0, share)) for dest in honest]
    return [
        ByzStrategy("silent"),
        ByzStrategy(
            "split-est",
            tuple(
                [(dest, AbaEst(sid, 0, 0)) for dest in group_a]
                + [(dest, AbaEst(sid, 0, 1)) for dest in group_b]
                + coin_r0
            ),
        ),
        ByzStrategy(
            "split-aux",
            tuple(
                [(dest, AbaAux(sid, 0, 0)) for dest in group_a]
                + [(dest, AbaAux(sid, 0, 1)) for dest in group_b]
                + coin_r0
            ),
        ),
    ]


def abc_strategies(
    n: int, t: int, byz: int, honest: Sequence[int], payloads: Sequence[bytes]
) -> List[ByzStrategy]:
    """Byzantine-*leader* palettes for atomic broadcast (leader of epoch 0
    is replica 0): silence forces the complaint/recovery path; sequence
    equivocation assigns the same slot to different requests per camp."""
    strategies = [ByzStrategy("silent")]
    if len(payloads) >= 2 and len(honest) >= 2:
        group_a, group_b = _split(honest)
        pa, pb = payloads[0], payloads[1]
        ra, rb = derive_request_id(pa), derive_request_id(pb)
        strategies.append(
            ByzStrategy(
                "equivocate-seq",
                tuple(
                    [(dest, AbcOrder(0, 0, ra, pa)) for dest in group_a]
                    + [(dest, AbcOrder(0, 0, rb, pb)) for dest in group_b]
                ),
            )
        )
    return strategies


# --------------------------------------------------------------------------
# Shared model machinery
# --------------------------------------------------------------------------


class _ModelState:
    """Every mutable piece of a model run, deep-copied as one unit."""

    def __init__(self) -> None:
        self.frontier = ChannelFrontier()
        self.step_count = 0


class BaseMessageModel:
    """Frontier bookkeeping shared by the three protocol models.

    Subclasses implement ``_build_state`` (fresh protocol objects),
    ``_handle`` (feed one delivery into the real handler and route its
    output) and the ``check_*`` invariant hooks.
    """

    sids_isolated = False
    #: hard per-run step bound; ``enabled()`` goes empty past it and
    #: ``check_leaf`` turns vacuous (bound hit != proven quiescent).
    step_cap = 4_000

    def __init__(self) -> None:
        self.state: _ModelState = None  # type: ignore[assignment]
        self._oracle: Optional[FootprintOracle] = None
        self._footprint_extra: FrozenSet[str] = frozenset()

    # -- engine interface --------------------------------------------------

    def reset(self) -> None:
        self.state = self._build_state()

    def enabled(self) -> List[ChannelKey]:
        if self.state.step_count >= self.step_cap:
            return []
        return self.state.frontier.enabled()

    def execute(self, choice: ChannelKey, index: int) -> StepMeta:
        src, dest = choice
        fifo = self.state.frontier.fifo_predecessor(choice)
        queued = self.state.frontier.pop(choice, index)
        self.state.step_count += 1
        self._handle(src, dest, queued.payload, index)
        return self._meta(
            choice, dest, queued.payload, sent_by=queued.sent_by, fifo=fifo
        )

    def peek(self, choice: ChannelKey) -> StepMeta:
        src, dest = choice
        queued = self.state.frontier.peek(choice)
        return self._meta(choice, dest, queued.payload)

    def fire_next_timer(self, index: int) -> Optional[StepMeta]:
        return None  # timer-free protocols override

    def snapshot(self) -> Optional[object]:
        return copy.deepcopy(self.state)

    def restore(self, snap: object) -> None:
        # Copy again: one snapshot may be restored many times and the
        # restored run mutates the state in place.
        self.state = copy.deepcopy(snap)

    def check_now(self) -> List[str]:
        return []

    def check_leaf(self) -> List[str]:
        return []

    def fingerprint(self) -> str:
        raise NotImplementedError

    @property
    def bound_hit(self) -> bool:
        return self.state.step_count >= self.step_cap

    # -- helpers -----------------------------------------------------------

    def _build_state(self) -> _ModelState:
        raise NotImplementedError

    def _handle(self, src: int, dest: int, payload: object, index: int) -> None:
        raise NotImplementedError

    def _meta(
        self,
        choice: ChannelKey,
        dest: int,
        payload: object,
        sent_by: int = -1,
        fifo: int = -1,
    ) -> StepMeta:
        kind = type(payload).__name__
        touched = self._footprint(kind)
        return StepMeta(
            choice=choice,
            dest=dest,
            instance=getattr(payload, "sid", None),
            reads=touched,
            writes=touched,
            sent_by=sent_by,
            fifo_pred=fifo,
            token=self._vote_token(payload),
            label=f"{choice[0]}->{dest}:{kind}",
        )

    def _vote_token(self, payload: object) -> Optional[object]:
        """Commuting-vote token (see ``StepMeta.token``): non-None only
        for handlers that are pure set-inserts with deterministic
        thresholds, where equal votes from different replicas provably
        commute.  Default: none (conservative)."""
        return None

    def _footprint(self, message_type: str) -> Optional[FrozenSet[str]]:
        if self._oracle is None:
            return None
        touched = self._oracle.footprint(message_type)
        if touched is None:
            return None
        return touched | self._footprint_extra

    def _route(
        self, src: int, outs: List[Outgoing], index: int, depth: int = 0
    ) -> None:
        """Enqueue an Outgoing list, mirroring the test-harness router:
        broadcast fans out to every *other* honest replica (sans-IO
        components self-process their own broadcasts internally) and a
        self-addressed message loops back synchronously."""
        for dest, msg in outs:
            if dest == BROADCAST:
                for peer in self._honest:
                    if peer != src:
                        self.state.frontier.push(src, peer, msg, sent_by=index)
            elif dest == src:
                if depth < 16:  # defensive: protocols never chain this deep
                    more = self._loopback(src, msg)
                    self._route(src, more, index, depth + 1)
            elif dest in self._honest:
                self.state.frontier.push(src, dest, msg, sent_by=index)
            # else: addressed to the Byzantine replica — absorbed.

    def _loopback(self, me: int, msg: object) -> List[Outgoing]:
        raise NotImplementedError

    def _enqueue_strategy(self, strategy: ByzStrategy, byz: int) -> None:
        for dest, msg in strategy.messages:
            if dest == BROADCAST:
                for peer in self._honest:
                    self.state.frontier.push(byz, peer, msg, sent_by=-1)
            elif dest in self._honest:
                self.state.frontier.push(byz, dest, msg, sent_by=-1)

    @property
    def _honest(self) -> List[int]:
        raise NotImplementedError


# --------------------------------------------------------------------------
# Reliable broadcast
# --------------------------------------------------------------------------


class _RbcState(_ModelState):
    def __init__(
        self,
        n: int,
        t: int,
        honest: List[int],
        mode: str,
        rbc_cls: type,
    ) -> None:
        super().__init__()
        self.logs: Dict[int, DeliveryLog] = {i: DeliveryLog() for i in honest}
        self.replicas: Dict[int, ReliableBroadcast] = {}
        for i in honest:
            rb = ReliableBroadcast(n, t, i, deliver=self.logs[i], mode=mode)
            # Corpus fixtures swap in a (deliberately broken) RbcInstance
            # subclass; production runs keep the real one.
            if rbc_cls is not RbcInstance:
                rb._instance = _InstanceFactory(rb, rbc_cls)  # type: ignore[method-assign]
            self.replicas[i] = rb


class _InstanceFactory:
    """Replaces ``ReliableBroadcast._instance`` to construct a fixture's
    RbcInstance subclass; a callable object so snapshots deep-copy it."""

    def __init__(self, rb: ReliableBroadcast, rbc_cls: type) -> None:
        self.rb = rb
        self.rbc_cls = rbc_cls

    def __call__(self, sid: str) -> RbcInstance:
        if sid not in self.rb._instances:
            self.rb._instances[sid] = self.rbc_cls(
                self.rb.n, self.rb.t, self.rb.me, sid, self.rb.mode
            )
        return self.rb._instances[sid]


class RbcModel(BaseMessageModel):
    """One reliable-broadcast instance at (n, t) with one corrupt replica.

    * Corrupt **sender** (``sender == byz``): agreement is checked after
      every step and totality at every drained leaf.  Validity is
      vacuous (a corrupt sender has no "right" payload).
    * Honest sender with a corrupt **voter**: validity and agreement
      must both hold, and totality at the leaf.
    """

    sids_isolated = True

    def __init__(
        self,
        n: int,
        t: int,
        *,
        mode: str = "full",
        byz: Optional[int] = None,
        strategy: Optional[ByzStrategy] = None,
        sender: int = 0,
        payload: bytes = b"alpha",
        sid: str = "s",
        rbc_cls: type = RbcInstance,
    ) -> None:
        super().__init__()
        self.n = n
        self.t = t
        self.mode = mode
        self.byz = byz
        self.strategy = strategy or ByzStrategy("silent")
        self.sender = sender
        self.payload = payload
        self.sid = sid
        self.rbc_cls = rbc_cls
        self.honest = [i for i in range(n) if i != byz]
        if rbc_cls is RbcInstance:
            self._oracle = oracle_for("repro.broadcast.rbc:RbcInstance")
        # Wrapper-level effects invisible to the RbcInstance-scoped
        # static footprints (pull kick-off, delivery hand-off).
        self._footprint_extra = frozenset(
            {"pull_active", "want_pull", "delivered", "pull_attempt"}
        )

    @property
    def _honest(self) -> List[int]:
        return self.honest

    def _build_state(self) -> _RbcState:
        state = _RbcState(self.n, self.t, self.honest, self.mode, self.rbc_cls)
        self.state = state
        if self.sender in self.honest:
            out = state.replicas[self.sender].broadcast(self.sid, self.payload)
            self._route(self.sender, out, -1)
        if self.byz is not None:
            self._enqueue_strategy(self.strategy, self.byz)
        return state

    def _handle(self, src: int, dest: int, payload: object, index: int) -> None:
        out = self.state.replicas[dest].on_message(src, payload)
        self._route(dest, out, index)

    def _loopback(self, me: int, msg: object) -> List[Outgoing]:
        return self.state.replicas[me].on_message(me, msg)

    def _vote_token(self, payload: object) -> Optional[object]:
        # SEND/ECHO handlers key all state on the payload (or its
        # digest), never on the transport-layer sender; READY votes are
        # per-sender set-inserts counted per digest.  Equal votes from
        # different replicas therefore commute.  Pull traffic
        # (RbcPull/RbcPayload/RbcVal/RbcFrag) stays order-sensitive:
        # responses depend on who asked and what arrived first.
        if self.rbc_cls is not RbcInstance:
            return None  # corpus fixtures may break the commutation proof
        if isinstance(payload, RbcSend):
            return ("send", payload.sid, payload.payload)
        if isinstance(payload, RbcEcho):
            return ("echo", payload.sid, payload.payload)
        if isinstance(payload, RbcEchoDigest):
            return ("echod", payload.sid, payload.digest)
        if isinstance(payload, RbcReady):
            return ("ready", payload.sid, payload.digest)
        return None

    def _delivered(self) -> Dict[int, Optional[bytes]]:
        state: _RbcState = self.state  # type: ignore[assignment]
        return {i: state.logs[i].get(self.sid) for i in self.honest}

    def check_now(self) -> List[str]:
        state: _RbcState = self.state  # type: ignore[assignment]
        delivered = self._delivered()
        problems = check_broadcast_agreement(delivered)
        if self.sender in self.honest:
            problems += check_broadcast_validity(delivered, self.payload)
        for i in self.honest:
            if state.logs[i].duplicates:
                problems.append(f"replica {i} delivered {self.sid!r} twice")
        return problems

    def check_leaf(self) -> List[str]:
        if self.bound_hit:
            return []
        problems = list(self.check_now())
        delivered = self._delivered()
        if self.sender in self.honest:
            # Honest sender + drained network: everyone must deliver.
            missing = sorted(i for i, v in delivered.items() if v is None)
            if missing:
                problems.append(
                    f"broadcast termination violated: replicas {missing}"
                    " never delivered an honest sender's payload"
                )
        else:
            problems += check_broadcast_totality(delivered)
        return problems

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        for i, value in sorted(self._delivered().items()):
            h.update(f"{i}:".encode())
            h.update(b"-" if value is None else _sha(value))
        return h.hexdigest()[:16]


# --------------------------------------------------------------------------
# Binary agreement
# --------------------------------------------------------------------------


class _AbaState(_ModelState):
    def __init__(
        self,
        n: int,
        t: int,
        honest: List[int],
        aba_cls: Optional[type],
    ) -> None:
        super().__init__()
        self.logs: Dict[int, DecisionLog] = {i: DecisionLog() for i in honest}
        self.replicas: Dict[int, BinaryAgreement] = {}
        for i in honest:
            ba = BinaryAgreement(n, t, i, StubCoinKey(t), on_decide=self.logs[i])
            install_stub_coin(ba, t, i)
            if aba_cls is not None:
                ba._instance = _AbaInstanceFactory(ba, aba_cls)  # type: ignore[method-assign]
            self.replicas[i] = ba


class _AbaInstanceFactory:
    """Counterpart of ``_InstanceFactory`` for ABA corpus fixtures."""

    def __init__(self, ba: BinaryAgreement, aba_cls: type) -> None:
        self.ba = ba
        self.aba_cls = aba_cls

    def __call__(self, sid: str):
        if sid not in self.ba._instances:
            self.ba._instances[sid] = self.aba_cls(
                self.ba.n, self.ba.t, self.ba.me, sid, self.ba.coin
            )
        return self.ba._instances[sid]


class AbaModel(BaseMessageModel):
    """One binary-agreement instance under the deterministic stub coin."""

    sids_isolated = True

    def __init__(
        self,
        n: int,
        t: int,
        *,
        byz: Optional[int] = None,
        strategy: Optional[ByzStrategy] = None,
        proposals: Optional[Dict[int, int]] = None,
        sid: str = "s",
        aba_cls: Optional[type] = None,
    ) -> None:
        super().__init__()
        self.n = n
        self.t = t
        self.byz = byz
        self.strategy = strategy or ByzStrategy("silent")
        self.sid = sid
        self.aba_cls = aba_cls
        self.honest = [i for i in range(n) if i != byz]
        self.proposals = (
            dict(proposals)
            if proposals is not None
            else {i: i % 2 for i in self.honest}
        )
        if aba_cls is None:
            self._oracle = oracle_for("repro.broadcast.aba:AbaInstance")
        # Everything ABA does can reach the shared coin endpoint and the
        # multiplexer's pending-output buffer; see module docstring.
        self._footprint_extra = frozenset(
            {"coin", "_pending_coin_out", "_decided"}
        )

    @property
    def _honest(self) -> List[int]:
        return self.honest

    def _build_state(self) -> _AbaState:
        state = _AbaState(self.n, self.t, self.honest, self.aba_cls)
        self.state = state
        for i in self.honest:
            value = self.proposals.get(i)
            if value is not None:
                out = state.replicas[i].propose(self.sid, value)
                self._route(i, out, -1)
        if self.byz is not None:
            self._enqueue_strategy(self.strategy, self.byz)
        return state

    def _handle(self, src: int, dest: int, payload: object, index: int) -> None:
        out = self.state.replicas[dest].on_message(src, payload)
        self._route(dest, out, index)

    def _loopback(self, me: int, msg: object) -> List[Outgoing]:
        return self.state.replicas[me].on_message(me, msg)

    def _vote_token(self, payload: object) -> Optional[object]:
        # EST/AUX/DECIDED are per-sender set-inserts keyed on
        # (round, value) with count thresholds only — equal votes
        # commute.  Coin shares commute *under the stub coin only*: the
        # real coin assembles the first t+1 shares into a signature whose
        # bytes (hence the coin value) depend on arrival order, but the
        # stub's value is a pure function of (sid, round).
        if self.aba_cls is not None:
            return None  # corpus fixtures may break the commutation proof
        if isinstance(payload, AbaEst):
            return ("est", payload.sid, payload.round, payload.value)
        if isinstance(payload, AbaAux):
            return ("aux", payload.sid, payload.round, payload.value)
        if isinstance(payload, AbaDecided):
            return ("decided", payload.sid, payload.value)
        if isinstance(payload, CoinShare):
            return ("coin", payload.sid, payload.round)
        return None

    def _decisions(self) -> Dict[int, Optional[int]]:
        state: _AbaState = self.state  # type: ignore[assignment]
        return {i: state.logs[i].get(self.sid) for i in self.honest}

    def check_now(self) -> List[str]:
        state: _AbaState = self.state  # type: ignore[assignment]
        proposed = [self.proposals[i] for i in self.honest if i in self.proposals]
        problems = check_agreement_decisions(self._decisions(), proposed)
        for i in self.honest:
            if state.logs[i].conflicts:
                problems.append(f"replica {i} decided {self.sid!r} twice")
        return problems

    def check_leaf(self) -> List[str]:
        if self.bound_hit:
            return []
        problems = list(self.check_now())
        if len(self.proposals) == len(self.honest):
            problems += check_agreement_termination(self._decisions())
        return problems

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        for i, value in sorted(self._decisions().items()):
            h.update(f"{i}:{value};".encode())
        return h.hexdigest()[:16]


# --------------------------------------------------------------------------
# Atomic broadcast
# --------------------------------------------------------------------------


class _SendHook:
    """Per-replica ``send`` effect: enqueue into the model frontier with
    the step index currently being executed."""

    def __init__(self, model: "AbcModel", me: int) -> None:
        self.model = model
        self.me = me

    def __call__(self, dest: int, msg: object) -> None:
        if dest in self.model.honest:
            self.model.state.frontier.push(
                self.me, dest, msg, sent_by=self.model._current_index
            )


class _AbcState(_ModelState):
    def __init__(self) -> None:
        super().__init__()
        self.rail = TimerRail()
        self.logs: Dict[int, AbcDeliveryLog] = {}
        self.replicas: Dict[int, AtomicBroadcast] = {}
        self.timer_fires = 0


class AbcModel(BaseMessageModel):
    """The full optimistic atomic broadcast under exploration.

    ``AtomicBroadcast`` arms timers over closures, which deep-copy
    incorrectly (the copy's timers would still poke the original
    replica), so this model opts out of snapshots: ``snapshot()``
    returns None and the engine replays the schedule prefix instead.
    Timer callbacks fire only at quiescent states, earliest-armed first,
    capped so a complaint loop cannot run away.
    """

    sids_isolated = False
    step_cap = 6_000

    def __init__(
        self,
        n: int,
        t: int,
        *,
        dissemination: str = "digest",
        byz: Optional[int] = None,
        strategy: Optional[ByzStrategy] = None,
        payloads: Sequence[bytes] = (b"req-a", b"req-b"),
        gateway: Optional[int] = None,
        timeout: float = 1.0,
        timer_cap: Optional[int] = None,
        abc_cls: type = AtomicBroadcast,
    ) -> None:
        super().__init__()
        self.n = n
        self.t = t
        self.dissemination = dissemination
        self.byz = byz
        self.strategy = strategy or ByzStrategy("silent")
        self.payloads = list(payloads)
        self.honest = [i for i in range(n) if i != byz]
        self.gateway = gateway if gateway is not None else self.honest[-1]
        self.timeout = timeout
        self.timer_cap = timer_cap if timer_cap is not None else 6 * n
        self.abc_cls = abc_cls
        self.rids = [derive_request_id(p) for p in self.payloads]
        self._current_index = -1
        if abc_cls is AtomicBroadcast:
            self._oracle = oracle_for("repro.broadcast.abc:AtomicBroadcast")
        self._footprint_extra = frozenset({"aba", "delivered_log"})

    @property
    def _honest(self) -> List[int]:
        return self.honest

    def _build_state(self) -> _AbcState:
        state = _AbcState()
        self.state = state
        self._current_index = -1
        publics = [StubKey(i) for i in range(self.n)]
        for i in self.honest:
            state.logs[i] = AbcDeliveryLog()
            abc = self.abc_cls(
                self.n,
                self.t,
                i,
                auth_key=publics[i],
                auth_public=publics,
                coin_key=StubCoinKey(self.t),
                deliver=state.logs[i],
                send=_SendHook(self, i),
                schedule=state.rail.arm,
                timeout=self.timeout,
                crypto=StubAuthPlane(i, publics),
                dissemination=self.dissemination,
                erasure_min_bytes=1,
            )
            install_stub_coin(abc.aba, self.t, i)
            state.replicas[i] = abc
        for payload in self.payloads:
            state.replicas[self.gateway].a_broadcast(payload)
        if self.byz is not None:
            self._enqueue_strategy(self.strategy, self.byz)
        return state

    def snapshot(self) -> Optional[object]:
        return None  # replay-based restore; see class docstring

    def restore(self, snap: object) -> None:  # pragma: no cover - unused
        raise RuntimeError("AbcModel restores by replay, not snapshot")

    def _handle(self, src: int, dest: int, payload: object, index: int) -> None:
        self._current_index = index
        try:
            self.state.replicas[dest].on_message(src, payload)
        finally:
            self._current_index = -1

    def _loopback(self, me: int, msg: object) -> List[Outgoing]:
        # AtomicBroadcast self-routes internally; nothing reaches here.
        self.state.replicas[me].on_message(me, msg)
        return []

    def fire_next_timer(self, index: int) -> Optional[StepMeta]:
        state: _AbcState = self.state  # type: ignore[assignment]
        if state.timer_fires >= self.timer_cap:
            return None
        timer = state.rail.pop_next()
        if timer is None:
            return None
        state.timer_fires += 1
        self._current_index = index
        try:
            timer.callback()  # type: ignore[operator]
        finally:
            self._current_index = -1
        return StepMeta(
            choice=("timer", timer.seq),
            dest=-1,
            barrier=True,
            label=f"timer#{timer.seq}",
        )

    def _vote_token(self, payload: object) -> Optional[object]:
        # COMMIT and COMPLAIN are per-sender set-inserts with count
        # thresholds; the embedded ABA votes commute as in AbaModel
        # (stub coin).  PREPARE does *not* commute: the certificate
        # formed at quorum snapshots whichever n-t signatures arrived
        # first, so arrival order is observable in the certificate.
        # EPOCH_FINAL likewise feeds an arrival-dependent pool into
        # NEW_EPOCH construction.
        if self.abc_cls is not AtomicBroadcast:
            return None  # corpus fixtures may break the commutation proof
        if isinstance(payload, AbcCommit):
            return ("commit", payload.epoch, payload.seq, payload.digest)
        if isinstance(payload, AbcComplain):
            return ("complain", payload.epoch)
        if isinstance(payload, AbaEst):
            return ("est", payload.sid, payload.round, payload.value)
        if isinstance(payload, AbaAux):
            return ("aux", payload.sid, payload.round, payload.value)
        if isinstance(payload, AbaDecided):
            return ("decided", payload.sid, payload.value)
        if isinstance(payload, CoinShare):
            return ("coin", payload.sid, payload.round)
        return None

    def _logs(self) -> Dict[int, List[Tuple[int, str]]]:
        state: _AbcState = self.state  # type: ignore[assignment]
        return {i: list(state.replicas[i].delivered_log) for i in self.honest}

    def check_now(self) -> List[str]:
        state: _AbcState = self.state  # type: ignore[assignment]
        problems = check_total_order(self._logs())
        for i in self.honest:
            for rid, payload in state.logs[i].order:
                if derive_request_id(payload) != rid:
                    problems.append(
                        f"integrity violated: replica {i} delivered payload"
                        f" not matching request id {rid}"
                    )
        return problems

    def check_leaf(self) -> List[str]:
        state: _AbcState = self.state  # type: ignore[assignment]
        problems = list(self.check_now())
        if self.bound_hit or state.timer_fires >= self.timer_cap:
            return problems  # inconclusive drain: safety only
        if state.rail.pending():
            return problems  # timers still armed: not a settled state
        logs = self._logs()
        lengths = {i: len(log) for i, log in logs.items()}
        if len(set(lengths.values())) > 1:
            problems.append(
                f"totality violated at quiescence: delivered counts {lengths}"
            )
        for i in self.honest:
            rids = {rid for _seq, rid in logs[i]}
            missing = [r for r in self.rids if r not in rids]
            if missing and self.byz is None:
                problems.append(
                    f"liveness violated: replica {i} missing requests {missing}"
                )
        return problems

    def fingerprint(self) -> str:
        h = hashlib.sha256()
        state: _AbcState = self.state  # type: ignore[assignment]
        for i in self.honest:
            h.update(state.replicas[i].delivery_digest().encode())
        return h.hexdigest()[:16]
