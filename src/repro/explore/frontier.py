"""The deliverable-event frontier: delivery choice = scheduling choice.

The explorer models the network as per-ordered-pair FIFO channels
(matching the sim network's TCP-like links, which enforce per-link FIFO
via ``_last_arrival``).  At any state, the *frontier* is the set of
channels with at least one undelivered message; picking a channel
delivers exactly the head of its queue, so a schedule is fully described
by a sequence of ``(src, dest)`` pairs.  That is the whole
``SchedulePoint`` abstraction: the enabled channel set at a state, plus
the default (oldest-first) pick used for deterministic completion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

BROADCAST = -1  # mirror of repro.broadcast.rbc.BROADCAST

ChannelKey = Tuple[int, int]  # (src, dest)


@dataclass
class QueuedMessage:
    """One undelivered message plus the step index that produced it."""

    payload: object
    sent_by: int  # step index whose execution enqueued this (-1 = initial)


@dataclass(frozen=True)
class SchedulePoint:
    """One choice point: the enabled channels, in deterministic order.

    ``enabled[0]`` is the default pick; a schedule that always takes the
    default is the canonical "oldest sender first" completion used for
    replay and for counterexample minimization.
    """

    depth: int
    enabled: Tuple[ChannelKey, ...]

    @property
    def default(self) -> Optional[ChannelKey]:
        return self.enabled[0] if self.enabled else None


class ChannelFrontier:
    """FIFO message queues keyed by (src, dest) channel."""

    def __init__(self) -> None:
        self._queues: Dict[ChannelKey, Deque[QueuedMessage]] = {}
        # Step index of the last message *delivered* on each channel, for
        # happens-before FIFO edges (-1 = none delivered yet).
        self._last_delivered_step: Dict[ChannelKey, int] = {}

    def push(
        self, src: int, dest: int, payload: object, sent_by: int = -1
    ) -> None:
        self._queues.setdefault((src, dest), deque()).append(
            QueuedMessage(payload, sent_by)
        )

    def enabled(self) -> List[ChannelKey]:
        """Channels with pending messages, in deterministic sorted order."""
        return sorted(key for key, q in self._queues.items() if q)

    def peek(self, key: ChannelKey) -> QueuedMessage:
        return self._queues[key][0]

    def pop(self, key: ChannelKey, step_index: int) -> QueuedMessage:
        """Deliver the head of ``key``; records the FIFO-predecessor edge."""
        msg = self._queues[key].popleft()
        self._last_delivered_step[key] = step_index
        return msg

    def fifo_predecessor(self, key: ChannelKey) -> int:
        """Step index of the previous delivery on this channel (-1 if none)."""
        return self._last_delivered_step.get(key, -1)

    def pending(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def __bool__(self) -> bool:
        return any(self._queues.values())


@dataclass
class ModelTimer:
    """A protocol timer armed via the model's schedule hook.

    Timers never race with deliveries: the explorer fires them only at
    quiescent states (no enabled channel), earliest-armed first, which is
    both deterministic and sound — a timer that fires while deliveries
    are still pending is subsumed by the schedule that delivers those
    messages first (the sim's timeouts are large relative to link
    delays).
    """

    seq: int
    delay: float
    callback: object  # zero-arg callable; typed loosely for deepcopy safety
    cancelled: bool = False

    def cancel(self) -> None:
        self.cancelled = True


@dataclass
class TimerRail:
    """Ordered collection of armed timers with deterministic firing."""

    timers: List[ModelTimer] = field(default_factory=list)
    next_seq: int = 0
    fired: int = 0

    def arm(self, delay: float, callback: object) -> ModelTimer:
        timer = ModelTimer(self.next_seq, delay, callback)
        self.next_seq += 1
        self.timers.append(timer)
        return timer

    def pop_next(self) -> Optional[ModelTimer]:
        """Earliest-armed live timer (delay, then arm order), or None."""
        live = [t for t in self.timers if not t.cancelled]
        if not live:
            return None
        timer = min(live, key=lambda t: (t.delay, t.seq))
        self.timers.remove(timer)
        self.fired += 1
        return timer

    def pending(self) -> int:
        return sum(1 for t in self.timers if not t.cancelled)
