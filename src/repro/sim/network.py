"""Simulated nodes and authenticated reliable links.

Each :class:`SimNode` models a single-CPU machine: message handling and
cryptographic work charge *busy time*, and messages that arrive while the
node is busy queue until the CPU frees up — exactly the serialization
that makes threshold-signature verification dominate the paper's write
latencies.  Links are point-to-point, authenticated, reliable, and FIFO
(the prototype ran over TCP, §4.4), with one-way delay equal to half the
configured site RTT.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError
from repro.sim.kernel import Event, Simulator
from repro.sim.machines import MachineSpec, Topology
from repro.crypto.costmodel import CostModel

# A handler receives (sender_id, payload) and runs in node virtual time.
Handler = Callable[[int, Any], None]

#: Fixed framing overhead charged per message and per composite field —
#: stands in for type tags and length prefixes of a real wire codec.
_FRAME_OVERHEAD = 4

#: Recursion floor for :func:`wire_size`; simulator messages are shallow
#: (a batch frame is already bytes), so this only guards Byzantine-shaped
#: test objects.
_MAX_SIZE_DEPTH = 12


def wire_size(payload: Any, _depth: int = 0) -> int:
    """Estimated serialized size in bytes of a simulator message.

    Messages travel as Python objects (the transports are in-process),
    so bandwidth accounting needs a size model: byte strings count their
    length, scalars a fixed width, and composites (dataclass messages,
    tuples, dicts) recurse with a small per-field framing overhead.  The
    model is deterministic and monotone — enough for the relative
    traffic claims the benchmarks make (a 4 KiB payload dwarfs every
    scalar field it travels with).
    """
    if _depth > _MAX_SIZE_DEPTH:
        return _FRAME_OVERHEAD
    if payload is None or isinstance(payload, bool):
        return 1
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, int):
        return max(4, (payload.bit_length() + 7) // 8)
    if isinstance(payload, float):
        return 8
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return _FRAME_OVERHEAD + sum(
            wire_size(getattr(payload, f.name), _depth + 1)
            for f in dataclasses.fields(payload)
        )
    if isinstance(payload, dict):
        return _FRAME_OVERHEAD + sum(
            wire_size(k, _depth + 1) + wire_size(v, _depth + 1)
            for k, v in payload.items()
        )
    if isinstance(payload, (tuple, list, set, frozenset)):
        return _FRAME_OVERHEAD + sum(wire_size(item, _depth + 1) for item in payload)
    inner = getattr(payload, "__dict__", None)
    if isinstance(inner, dict):
        return _FRAME_OVERHEAD + sum(
            wire_size(v, _depth + 1) for v in inner.values()
        )
    return _FRAME_OVERHEAD


@dataclass(frozen=True)
class PartitionWindow:
    """One network partition: ``groups`` cannot talk between ``start`` and
    ``heal`` (simulated seconds).  Traffic crossing the cut is *buffered*
    and delivered after the heal — the paper's links are reliable
    asynchronous channels, so a partition manifests as (possibly long)
    delay, never permanent loss.
    """

    start: float
    heal: float
    groups: Tuple[Tuple[int, ...], ...]

    def separates(self, a: int, b: int) -> bool:
        side_a = side_b = None
        for idx, group in enumerate(self.groups):
            if a in group:
                side_a = idx
            if b in group:
                side_b = idx
        if side_a is None or side_b is None:
            return False  # nodes outside every group (e.g. clients) roam free
        return side_a != side_b


class AdversarialScheduler:
    """A seed-replayable network adversary plugged into :class:`SimNetwork`.

    The paper's model (§2) gives the adversary full control of message
    *scheduling* over reliable authenticated links: it may delay,
    duplicate, and reorder traffic between replicas, and partition the
    replica set, but it cannot forge or permanently destroy honest
    replica-to-replica messages (there is no retransmission layer above
    the links — signing shares sent exactly once must eventually arrive).
    Client links are weaker: a dropped request or response only costs the
    client a timeout and retry (§3.4), so drops are allowed there.

    All choices flow from one seeded PRNG, so a failing schedule replays
    exactly from its seed.  Every decision is appended to :attr:`log`,
    which the chaos harness folds into its transcript.
    """

    def __init__(
        self,
        seed: int,
        n_replicas: int,
        drop_rate: float = 0.0,
        dup_rate: float = 0.0,
        delay_rate: float = 0.0,
        max_delay: float = 0.25,
        slow_senders: Sequence[int] = (),
        slow_delay: float = 0.0,
        partitions: Sequence[PartitionWindow] = (),
        active_until: float = 30.0,
    ) -> None:
        for window in partitions:
            if window.heal > active_until:
                raise ConfigError(
                    "partitions must heal before the adversary deactivates"
                )
        self.rng = random.Random(seed)
        self.n_replicas = n_replicas
        self.drop_rate = drop_rate
        self.dup_rate = dup_rate
        self.delay_rate = delay_rate
        self.max_delay = max_delay
        self.slow_senders = frozenset(slow_senders)
        self.slow_delay = slow_delay
        self.partitions = tuple(partitions)
        #: After this point the adversary stands down and traffic flows
        #: untouched — the "eventual synchrony" that guarantees G2 runs
        #: can be checked in bounded simulated time.
        self.active_until = active_until
        self.log: List[str] = []
        self.stats: Dict[str, int] = {
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "held": 0,
        }

    def schedule_deliveries(
        self, src: int, dest: int, departure: float
    ) -> List[float]:
        """Extra delays for each delivery of one message; ``[]`` drops it.

        ``[0.0]`` is the undisturbed single delivery; two entries mean the
        message is duplicated.
        """
        if departure >= self.active_until:
            return [0.0]
        for window in self.partitions:
            if window.start <= departure < window.heal and window.separates(
                src, dest
            ):
                hold = (window.heal - departure) + self.rng.uniform(0.0, 0.05)
                self.stats["held"] += 1
                self.log.append(
                    f"hold {src}->{dest} t={departure:.6f} for={hold:.6f}"
                )
                return [hold]
        client_link = src >= self.n_replicas or dest >= self.n_replicas
        if client_link and self.drop_rate and self.rng.random() < self.drop_rate:
            self.stats["dropped"] += 1
            self.log.append(f"drop {src}->{dest} t={departure:.6f}")
            return []
        extra = 0.0
        if self.delay_rate and self.rng.random() < self.delay_rate:
            extra = self.rng.uniform(0.0, self.max_delay)
            self.stats["delayed"] += 1
            self.log.append(
                f"delay {src}->{dest} t={departure:.6f} by={extra:.6f}"
            )
        if src in self.slow_senders:
            extra += self.slow_delay
        deliveries = [extra]
        if self.dup_rate and self.rng.random() < self.dup_rate:
            second = extra + self.rng.uniform(0.0, self.max_delay)
            deliveries.append(second)
            self.stats["duplicated"] += 1
            self.log.append(
                f"dup {src}->{dest} t={departure:.6f} at=+{second:.6f}"
            )
        return deliveries


class SimNode:
    """One machine in the simulation.

    Node code runs inside handler callbacks.  During a callback,
    :meth:`charge` advances the node's *virtual time* (CPU busy time) and
    :meth:`send` stamps outgoing messages with that virtual time, so a
    message sent after an expensive verification leaves late — no extra
    bookkeeping needed in protocol code.
    """

    def __init__(
        self,
        node_id: int,
        machine: MachineSpec,
        network: "SimNetwork",
    ) -> None:
        self.node_id = node_id
        self.machine = machine
        self.network = network
        self.handler: Optional[Handler] = None
        self.busy_until = 0.0
        self._vtime = 0.0
        self._in_handler = False
        self.delivered_count = 0
        self.dropped = False  # crash-fault injection

    # -- wiring -------------------------------------------------------------

    def set_handler(self, handler: Handler) -> None:
        self.handler = handler

    @property
    def sim(self) -> Simulator:
        return self.network.sim

    @property
    def now(self) -> float:
        """Current node-local virtual time (inside a handler) or sim time."""
        return self._vtime if self._in_handler else self.sim.now

    # -- CPU model -----------------------------------------------------------

    def charge(self, reference_seconds: float) -> None:
        """Consume CPU: ``reference_seconds`` scaled by this machine's speed.

        A small seeded jitter models run-to-run CPU variance; the paper's
        Table 2 averages 20 runs precisely because such races (e.g.
        whether a corrupted server's share lands among the first ``t+1``)
        change individual measurements.
        """
        if reference_seconds < 0:
            raise ConfigError("cannot charge negative CPU time")
        cost = reference_seconds * self.machine.cpu_factor
        jitter = self.network.cpu_jitter
        if jitter and cost > 0:
            cost *= 1.0 + jitter * (2.0 * self.network.rng.random() - 1.0)
        if self._in_handler:
            self._vtime += cost
            self.busy_until = self._vtime
        else:
            start = max(self.sim.now, self.busy_until)
            self.busy_until = start + cost

    def charge_ops(self, ops: List[Tuple[str, int]], costs: CostModel) -> None:
        """Charge a crypto operation log drained from a signing protocol."""
        for op, count in ops:
            self.charge(costs.crypto_cost(op, count))

    # -- messaging ------------------------------------------------------------

    def send(self, dest: int, payload: Any) -> None:
        """Send ``payload`` to node ``dest`` over the authenticated link."""
        departure = self._vtime if self._in_handler else self.sim.now
        self.network.transmit(self.node_id, dest, payload, departure)

    def broadcast(self, payload: Any, include_self: bool = False) -> None:
        for dest in range(len(self.network.nodes)):
            if dest == self.node_id and not include_self:
                continue
            self.send(dest, payload)

    def run_local(self, delay: float, thunk: Callable[[], None]) -> None:
        """Schedule local work on this node's CPU after ``delay``."""
        def fire() -> None:
            self._execute(lambda: thunk())

        self.sim.schedule(delay, fire)

    def schedule_timer(self, delay: float, thunk: Callable[[], None]) -> Event:
        """Arm a node-local timer; returns a cancellable event handle.

        The delay is measured from the node's current virtual time, so a
        timer set after an expensive crypto operation fires late — as it
        would on a real busy machine.
        """
        base = self._vtime if self._in_handler else max(self.sim.now, self.busy_until)
        return self.sim.schedule_at(base + delay, lambda: self._execute(thunk))

    # -- delivery -------------------------------------------------------------

    def _deliver(self, sender: int, payload: Any) -> None:
        """Called by the network when a message's arrival event fires."""
        if self.dropped:
            return
        start = max(self.sim.now, self.busy_until)
        if start > self.sim.now:
            self.sim.schedule_at(start, lambda: self._deliver(sender, payload))
            return
        self.delivered_count += 1
        self._execute(lambda: self._dispatch(sender, payload))

    def _dispatch(self, sender: int, payload: Any) -> None:
        if self.handler is not None:
            self.handler(sender, payload)

    def _execute(self, thunk: Callable[[], None]) -> None:
        """Run ``thunk`` in node virtual time starting now."""
        was_in_handler = self._in_handler
        outer_vtime = self._vtime
        self._in_handler = True
        self._vtime = max(self.sim.now, self.busy_until)
        try:
            thunk()
        finally:
            self.busy_until = max(self.busy_until, self._vtime)
            self._in_handler = was_in_handler
            if was_in_handler:
                self._vtime = max(outer_vtime, self._vtime)


class SimNetwork:
    """All nodes plus the latency matrix; creates and owns the simulator."""

    def __init__(
        self,
        topology: Topology,
        costs: Optional[CostModel] = None,
        sim: Optional[Simulator] = None,
        seed: int = 0,
        cpu_jitter: float = 0.03,
    ) -> None:
        self.sim = sim if sim is not None else Simulator()
        self.topology = topology
        self.costs = costs if costs is not None else CostModel()
        self.rng = random.Random(seed)
        self.cpu_jitter = cpu_jitter
        self.nodes: List[SimNode] = [
            SimNode(i, topology.machine(i), self) for i in range(len(topology))
        ]
        self._last_arrival: Dict[Tuple[int, int], float] = {}
        # Maps node id -> topology index used for latency lookups.  Extra
        # nodes (clients) are colocated with a chosen topology machine.
        self._site_index: Dict[int, int] = {i: i for i in range(len(topology))}
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Per-(src, dest) transmitted bytes — the per-link ledger the
        #: broadcast-plane bandwidth claims are measured against.
        self.bytes_by_link: Dict[Tuple[int, int], int] = {}
        #: Per-node sent / received byte totals.
        self.bytes_out: Dict[int, int] = {}
        self.bytes_in: Dict[int, int] = {}
        #: Per-message-type byte totals (class name -> bytes), e.g. how
        #: much of the traffic was echo votes vs. payload dissemination.
        self.bytes_by_type: Dict[str, int] = {}
        self.adversary: Optional[AdversarialScheduler] = None
        #: Explorer intercept: when set, ``transmit`` hands every message
        #: to this hook *after* byte accounting.  Returning True parks
        #: the message (the hook owns delivery order from then on — the
        #: systematic explorer's frontier); False falls through to the
        #: normal latency-model delivery path.
        self.delivery_hook: Optional[Callable[[int, int, Any], bool]] = None

    def set_adversary(self, adversary: Optional[AdversarialScheduler]) -> None:
        """Hand message scheduling to an adversary (None restores calm)."""
        self.adversary = adversary

    def add_node(self, machine: MachineSpec, colocated_with: int = 0) -> SimNode:
        """Append an extra node (e.g. a client) sharing a machine's site.

        The paper's client sits on the Zurich LAN (``colocated_with=0``).
        """
        node = SimNode(len(self.nodes), machine, self)
        self.nodes.append(node)
        self._site_index[node.node_id] = self._site_index[colocated_with]
        return node

    def node(self, node_id: int) -> SimNode:
        return self.nodes[node_id]

    def transmit(
        self, src: int, dest: int, payload: Any, departure: float
    ) -> None:
        """Deliver ``payload`` from ``src`` to ``dest`` with link latency.

        FIFO per link: a message never overtakes an earlier one on the
        same (src, dest) pair, matching the prototype's TCP links.
        """
        if not 0 <= dest < len(self.nodes):
            raise ConfigError(f"no node {dest}")
        self.messages_sent += 1
        size = wire_size(payload)
        self.bytes_sent += size
        key = (src, dest)
        self.bytes_by_link[key] = self.bytes_by_link.get(key, 0) + size
        self.bytes_out[src] = self.bytes_out.get(src, 0) + size
        self.bytes_in[dest] = self.bytes_in.get(dest, 0) + size
        type_name = type(payload).__name__
        self.bytes_by_type[type_name] = (
            self.bytes_by_type.get(type_name, 0) + size
        )
        if self.delivery_hook is not None and self.delivery_hook(
            src, dest, payload
        ):
            return
        delay = self._link_delay(src, dest)
        if self.adversary is not None:
            extras = self.adversary.schedule_deliveries(src, dest, departure)
        else:
            extras = [0.0]
        receiver = self.nodes[dest]
        for extra in extras:
            arrival = departure + delay + extra
            last = self._last_arrival.get(key, 0.0)
            arrival = max(arrival, last + 1e-9)
            self._last_arrival[key] = arrival
            self.sim.schedule_at(
                arrival, lambda: receiver._deliver(src, payload)
            )

    def _link_delay(self, src: int, dest: int) -> float:
        if src == dest:
            return 0.0
        a = self._site_index[src]
        b = self._site_index[dest]
        if a == b:
            # Same machine index means colocated (client next to gateway):
            # still a LAN hop, not zero.
            from repro.sim.machines import LAN_RTT

            return LAN_RTT / 2.0
        return self.topology.one_way_delay(a, b)

    def run(self, **kwargs: Any) -> None:
        self.sim.run(**kwargs)
