"""Deterministic discrete-event simulation kernel.

A minimal but complete event loop: events are ``(time, sequence,
callback)`` triples in a heap; ties in time break by insertion order, so
runs are exactly reproducible.  Protocol code never reads wall-clock time
— all timing flows from :attr:`Simulator.now`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ReproError


class SimulationError(ReproError):
    """The simulation reached an invalid state (e.g. ran backwards)."""


@dataclass(order=True)
class Event:
    """A scheduled callback.  Cancelled events stay in the heap but no-op."""

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """The event loop.  One instance drives one experiment."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: Optional hook called as ``trace(time, seq)`` for every event
        #: processed.  The chaos harness folds the event stream into its
        #: transcript hash, so two runs of the same seed must execute the
        #: exact same events at the exact same times to hash equal.
        self.trace: Optional[Callable[[float, int], None]] = None

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at ``now + delay``; returns a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        event = Event(time=self.now + delay, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute simulated ``time``."""
        return self.schedule(max(0.0, time - self.now), callback)

    def call_soon(self, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at the current time, after pending same-time events."""
        return self.schedule(0.0, callback)

    # -- running --------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if event.time < self.now:
                raise SimulationError("event queue went backwards")
            self.now = event.time
            self._events_processed += 1
            if self.trace is not None:
                self.trace(event.time, event.seq)
            event.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
        max_events: int = 10_000_000,
    ) -> None:
        """Run until the queue drains, ``until`` passes, or ``condition()``.

        ``max_events`` is a runaway-protocol backstop; hitting it raises.
        """
        processed = 0
        while self._heap:
            if condition is not None and condition():
                return
            next_time = self._peek_time()
            if until is not None and (next_time is None or next_time > until):
                self.now = until
                return
            if not self.step():
                return
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"simulation exceeded {max_events} events; likely livelock"
                )
        if until is not None and until > self.now:
            self.now = until

    def _peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def next_event_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty.

        Public peek for external drivers (the systematic explorer) that
        interleave their own delivery choices with the kernel's events
        and must know how far the kernel wants to jump before letting it.
        """
        return self._peek_time()

    def run_available(
        self, horizon: Optional[float] = None, max_events: int = 100_000
    ) -> int:
        """Process every event at or before ``horizon`` (default: ``now``).

        Used by the systematic explorer to drain the zero-delay cascade
        (``call_soon`` chains, busy-CPU re-deliveries) after injecting
        one message delivery, without letting protocol timeouts — which
        sit further out on the heap — fire out of turn.  Returns the
        number of events processed.
        """
        limit = self.now if horizon is None else horizon
        processed = 0
        while True:
            next_time = self._peek_time()
            if next_time is None or next_time > limit:
                return processed
            if not self.step():  # pragma: no cover - peek said non-empty
                return processed
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"cascade exceeded {max_events} events; likely livelock"
                )

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def events_processed(self) -> int:
        return self._events_processed


class Timer:
    """A restartable timeout helper bound to a simulator.

    Protocols use timers for leader-suspicion (§3.3's "apparently not
    performing correctly" is a local timeout in practice, §4.4).
    """

    def __init__(
        self, sim: Simulator, timeout: float, callback: Callable[[], None]
    ) -> None:
        self._sim = sim
        self._timeout = timeout
        self._callback = callback
        self._event: Optional[Event] = None

    def start(self) -> None:
        self.cancel()
        self._event = self._sim.schedule(self._timeout, self._fire)

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def restart(self) -> None:
        self.start()

    @property
    def active(self) -> bool:
        return self._event is not None and not self._event.cancelled

    def _fire(self) -> None:
        self._event = None
        self._callback()
