"""The paper's testbed as simulation inputs: Table 1 machines, Figure 1 WAN.

CPU speeds come straight from Table 1; the simulator scales cryptographic
CPU costs by clock speed relative to the 266 MHz Zurich reference
machines (the paper itself attributes the (4,0)* vs (4,0) BASIC anomaly
to exactly this speed difference, §5.3).

The printed version of Figure 1 carries the measured round-trip times on
each link; the text of the paper available to us names the links but not
every number, so the values below are the documented estimates used by
this reproduction (chosen to be consistent with the read latencies in
Table 2; see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigError

REFERENCE_MHZ = 266  # the Zurich P-II machines; cost model baseline


@dataclass(frozen=True)
class MachineSpec:
    """One testbed machine (a row of Table 1)."""

    name: str
    location: str
    os: str
    cpu: str
    mhz: int
    java: str

    @property
    def cpu_factor(self) -> float:
        """CPU time multiplier relative to the 266 MHz reference."""
        return REFERENCE_MHZ / self.mhz


# Table 1 — the seven machines.  Zurich has four identical machines.
PAPER_MACHINES: Tuple[MachineSpec, ...] = (
    MachineSpec("zurich-1", "Zurich", "Linux 2.2.x", "P II", 266, "IBM 1.4.1"),
    MachineSpec("zurich-2", "Zurich", "Linux 2.2.x", "P II", 266, "IBM 1.4.1"),
    MachineSpec("zurich-3", "Zurich", "Linux 2.2.x", "P II", 266, "IBM 1.4.1"),
    MachineSpec("zurich-4", "Zurich", "Linux 2.2.x", "P II", 266, "IBM 1.4.1"),
    MachineSpec("newyork-1", "New York", "Linux 2.2.x", "P II", 300, "IBM 1.4.1"),
    MachineSpec("austin-1", "Austin", "Linux 2.4.x", "dual P III", 1260, "Sun 1.4.2"),
    MachineSpec("sanjose-1", "San Jose", "Linux 2.4.x", "P III", 930, "Sun 1.4.2"),
)

# Figure 1 — average round-trip times between sites, in seconds.
LAN_RTT = 0.0003
PAPER_SITE_RTTS: Dict[Tuple[str, str], float] = {
    ("Zurich", "Zurich"): LAN_RTT,
    ("New York", "New York"): LAN_RTT,
    ("Austin", "Austin"): LAN_RTT,
    ("San Jose", "San Jose"): LAN_RTT,
    ("Zurich", "New York"): 0.093,
    ("Zurich", "Austin"): 0.114,
    ("Zurich", "San Jose"): 0.159,
    ("New York", "Austin"): 0.057,
    ("New York", "San Jose"): 0.076,
    ("Austin", "San Jose"): 0.045,
}


def site_rtt(site_a: str, site_b: str) -> float:
    """Round-trip time between two sites (symmetric lookup)."""
    if (site_a, site_b) in PAPER_SITE_RTTS:
        return PAPER_SITE_RTTS[(site_a, site_b)]
    if (site_b, site_a) in PAPER_SITE_RTTS:
        return PAPER_SITE_RTTS[(site_b, site_a)]
    raise ConfigError(f"no RTT configured between {site_a!r} and {site_b!r}")


class Topology:
    """Machines plus the latency matrix between them."""

    def __init__(self, machines: List[MachineSpec]) -> None:
        if len({m.name for m in machines}) != len(machines):
            raise ConfigError("duplicate machine names in topology")
        self.machines = list(machines)

    def __len__(self) -> int:
        return len(self.machines)

    def machine(self, index: int) -> MachineSpec:
        return self.machines[index]

    def one_way_delay(self, a: int, b: int) -> float:
        """One-way delay between machine indices (half the site RTT)."""
        if a == b:
            return 0.0
        return (
            site_rtt(self.machines[a].location, self.machines[b].location) / 2.0
        )

    def rtt(self, a: int, b: int) -> float:
        if a == b:
            return 0.0
        return site_rtt(self.machines[a].location, self.machines[b].location)


PAPER_TOPOLOGY = Topology(list(PAPER_MACHINES))


def lan_setup(count: int = 4) -> Topology:
    """The (n,k)* local setup: identical Zurich machines on the LAN."""
    if count > 4:
        # The paper's LAN cluster has four machines; allow synthetic extras
        # with the same specs for ablation experiments.
        extra = [
            MachineSpec(
                f"zurich-x{i}", "Zurich", "Linux 2.2.x", "P II", 266, "IBM 1.4.1"
            )
            for i in range(count - 4)
        ]
        return Topology(list(PAPER_MACHINES[:4]) + extra)
    return Topology(list(PAPER_MACHINES[:count]))


def paper_setup(n: int) -> Topology:
    """The Internet setups of Table 2.

    * n=1 — one Zurich machine (the unreplicated base case)
    * n=4 — two machines in Zurich, one in New York, one in San Jose
    * n=7 — all seven machines
    """
    machines_by_name = {m.name: m for m in PAPER_MACHINES}
    if n == 1:
        names = ["zurich-1"]
    elif n == 4:
        names = ["zurich-1", "zurich-2", "newyork-1", "sanjose-1"]
    elif n == 7:
        names = [m.name for m in PAPER_MACHINES]
    elif n > 7:
        # Big-n ablations (e.g. the (10, 3) broadcast-plane sweep) extend
        # the paper's seven machines with synthetic extras that reuse the
        # existing sites round-robin, so the latency matrix stays within
        # Figure 1's measured RTTs.
        extras = [
            MachineSpec(
                f"extra-{i}",
                PAPER_MACHINES[i % len(PAPER_MACHINES)].location,
                "Linux 2.4.x",
                "P III",
                930,
                "Sun 1.4.2",
            )
            for i in range(n - 7)
        ]
        return Topology(list(PAPER_MACHINES) + extras)
    else:
        raise ConfigError(f"the paper has no {n}-server Internet setup")
    return Topology([machines_by_name[name] for name in names])
