"""Discrete-event simulation substrate.

The paper evaluated on seven physical machines across the IBM intranet
(Table 1, Figure 1).  This package replaces that testbed with a
deterministic discrete-event simulator: simulated links carry the
topology's round-trip latencies, and each node charges calibrated CPU
time for cryptographic operations, scaled by its machine's clock speed.
"""

from repro.sim.kernel import Simulator, Event
from repro.sim.network import SimNetwork, SimNode
from repro.sim.machines import (
    MachineSpec,
    PAPER_MACHINES,
    PAPER_TOPOLOGY,
    paper_setup,
    lan_setup,
)

__all__ = [
    "Simulator",
    "Event",
    "SimNetwork",
    "SimNode",
    "MachineSpec",
    "PAPER_MACHINES",
    "PAPER_TOPOLOGY",
    "paper_setup",
    "lan_setup",
]
