"""Small linear-expression algebra over the protocol parameters (n, t).

The quorum checker (DESIGN.md §5h) needs to decide inequalities such as
``2*Q - n >= t + 1`` for every admissible deployment.  Threshold
expressions in the codebase are linear in ``n`` and ``t`` with small
integer coefficients, so no SMT solver is needed: an expression is
normalized to ``a*n + b*t + c`` and obligations are *evaluated* over the
whole admissible domain

    D = { (n, t) : t >= 1, n >= 3t + 1, n <= 64 }

(the paper's resilience assumption, bounded to deployable cluster
sizes).  An obligation holds iff it holds at every point of D; the first
counterexample is reported so findings name a concrete broken
deployment.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

#: Largest cluster size considered by the admissible-domain sweep.
MAX_N = 64


@dataclass(frozen=True)
class LinExpr:
    """``n_coef * n + t_coef * t + const`` with integer coefficients."""

    n_coef: int = 0
    t_coef: int = 0
    const: int = 0

    def __add__(self, other: "LinExpr") -> "LinExpr":
        return LinExpr(
            self.n_coef + other.n_coef,
            self.t_coef + other.t_coef,
            self.const + other.const,
        )

    def __sub__(self, other: "LinExpr") -> "LinExpr":
        return LinExpr(
            self.n_coef - other.n_coef,
            self.t_coef - other.t_coef,
            self.const - other.const,
        )

    def __neg__(self) -> "LinExpr":
        return LinExpr(-self.n_coef, -self.t_coef, -self.const)

    def scale(self, k: int) -> "LinExpr":
        return LinExpr(self.n_coef * k, self.t_coef * k, self.const * k)

    def eval(self, n: int, t: int) -> int:
        return self.n_coef * n + self.t_coef * t + self.const

    @property
    def mentions_params(self) -> bool:
        return self.n_coef != 0 or self.t_coef != 0

    def render(self) -> str:
        """Canonical text form ("2t+1", "n-t", "n", "3t", "5")."""
        parts = []
        for coef, var in ((self.n_coef, "n"), (self.t_coef, "t")):
            if coef == 0:
                continue
            sign = "-" if coef < 0 else ("+" if parts else "")
            mag = abs(coef)
            parts.append(f"{sign}{'' if mag == 1 else mag}{var}")
        if self.const != 0 or not parts:
            sign = "-" if self.const < 0 else ("+" if parts else "")
            parts.append(f"{sign}{abs(self.const)}")
        return "".join(parts)


N = LinExpr(n_coef=1)
T = LinExpr(t_coef=1)
ONE = LinExpr(const=1)


def const(value: int) -> LinExpr:
    return LinExpr(const=value)


#: Leaf attribute names recognized as the protocol parameters.  Attribute
#: chains must be rooted at ``self`` (``self.n``, ``self.public.t``,
#: ``self.key_share.public.t``); bare names cover constructor parameters.
_PARAM_LEAVES = {"n": N, "t": T}


def _rooted_at_self(node: ast.expr) -> bool:
    while isinstance(node, ast.Attribute):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


def parse_linear(node: ast.expr) -> Optional[LinExpr]:
    """Normalize an AST expression to a :class:`LinExpr`, or ``None``.

    Handles integer constants, ``n``/``t`` leaves (bare names or
    self-rooted attribute chains ending in ``.n``/``.t``), unary minus,
    ``+``/``-``, and multiplication by a constant.  Anything else —
    ``%``, ``//``, variable operands — fails normalization; the caller
    decides whether that is a Q505 triage case.
    """
    if isinstance(node, ast.Constant):
        if isinstance(node.value, int) and not isinstance(node.value, bool):
            return const(node.value)
        return None
    if isinstance(node, ast.Name):
        return _PARAM_LEAVES.get(node.id)
    if isinstance(node, ast.Attribute):
        leaf = _PARAM_LEAVES.get(node.attr)
        if leaf is not None and _rooted_at_self(node):
            return leaf
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = parse_linear(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.BinOp):
        left = parse_linear(node.left)
        right = parse_linear(node.right)
        if left is None or right is None:
            return None
        if isinstance(node.op, ast.Add):
            return left + right
        if isinstance(node.op, ast.Sub):
            return left - right
        if isinstance(node.op, ast.Mult):
            if not left.mentions_params:
                return right.scale(left.const)
            if not right.mentions_params:
                return left.scale(right.const)
            return None  # n*t: not linear
        return None
    return None


def mentions_params(node: ast.expr) -> bool:
    """True if any ``n``/``t`` parameter leaf occurs anywhere in ``node``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _PARAM_LEAVES:
            return True
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr in _PARAM_LEAVES
            and _rooted_at_self(sub)
        ):
            return True
    return False


def admissible_domain(max_n: int = MAX_N) -> Iterator[Tuple[int, int]]:
    """Every (n, t) with t >= 1, n >= 3t+1, n <= max_n."""
    t = 1
    while 3 * t + 1 <= max_n:
        for n in range(3 * t + 1, max_n + 1):
            yield n, t
        t += 1


def first_failure(
    lhs: LinExpr, rhs: LinExpr, max_n: int = MAX_N
) -> Optional[Tuple[int, int]]:
    """First (n, t) in the admissible domain where ``lhs >= rhs`` fails,
    or ``None`` when the inequality holds everywhere."""
    for n, t in admissible_domain(max_n):
        if lhs.eval(n, t) < rhs.eval(n, t):
            return n, t
    return None


def always_ge(lhs: LinExpr, rhs: LinExpr, max_n: int = MAX_N) -> bool:
    return first_failure(lhs, rhs, max_n) is None


#: Tiny grammar for obligation annotations ("n-t", "2t+1", "t", "n").
def parse_expr_text(text: str) -> Optional[LinExpr]:
    cleaned = text.strip().replace(" ", "")
    # Accept the render() shorthand: "2t" means "2*t".
    cleaned = re.sub(r"(\d)([nt])\b", r"\1*\2", cleaned)
    try:
        node = ast.parse(cleaned, mode="eval").body
    except SyntaxError:
        return None
    return parse_linear(node)
