"""Yield-point atomicity checker (Y601-Y604, DESIGN.md §5h).

A replica handler runs atomically only between ``await``s: every yield
point is a seam where another activation (or another handler of the same
object) can run.  This pass linearizes each dispatcher-reachable
``async def`` into self-attribute reads/writes and yield points, then
flags spans where an await interposes between a guard and the write it
protects (Y601), between a read and a write of state shared with other
handlers (Y602), or inside a busy-flag critical section with no
``finally`` reset (Y603) — plus fire-and-forget task spawns whose
exceptions are silently dropped (Y604).

Handler reachability reuses the PR-5 indexer: every function marked
``is_handler`` (dispatcher registrations + ``on_``/``handle_`` naming)
seeds a call-graph BFS; Y601-Y603 run over the async functions in that
closure, Y604 over every in-scope ``async def``.
"""

from __future__ import annotations

import ast
import fnmatch
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import Finding
from repro.taint.indexer import FunctionInfo, ProgramIndex

from .quorum import _walk_no_nested
from .specs import BUSY_FLAG_HINTS, TASK_SPAWNERS


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_busy_name(attr: str) -> bool:
    lowered = attr.lower()
    return any(hint in lowered for hint in BUSY_FLAG_HINTS)


@dataclass(frozen=True)
class RaceWindow:
    """Structured form of one Y-finding, for the explorer's confirm mode.

    Identifies the await window a finding points at — enough for
    ``repro explore --confirm-races`` to search for a schedule whose
    interleaving exercises exactly this suspension point.
    """

    rule: str
    path: str
    line: int
    fn_qname: str
    cls: Optional[str]
    attr: Optional[str]
    yield_line: Optional[int]


@dataclass
class _Events:
    """Line-indexed access summary of one async function."""

    awaits: List[int] = field(default_factory=list)
    reads: List[Tuple[str, int]] = field(default_factory=list)
    writes: List[Tuple[str, int]] = field(default_factory=list)
    #: self-attrs read inside If/While/Assert tests: (attr, test line)
    test_reads: List[Tuple[str, int]] = field(default_factory=list)


def _collect_events(fn_node: ast.AST) -> _Events:
    ev = _Events()
    for node in _walk_no_nested(fn_node):
        if isinstance(node, (ast.Await, ast.AsyncFor, ast.AsyncWith)):
            ev.awaits.append(node.lineno)
        elif isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is None:
                continue
            if isinstance(node.ctx, ast.Store):
                ev.writes.append((attr, node.lineno))
            elif isinstance(node.ctx, ast.Load):
                ev.reads.append((attr, node.lineno))
        if isinstance(node, (ast.If, ast.While, ast.Assert)):
            test = node.test
            for sub in ast.walk(test):
                attr = _self_attr(sub)
                if attr is not None and isinstance(sub.ctx, ast.Load):
                    ev.test_reads.append((attr, test.lineno))
    ev.awaits.sort()
    return ev


def _revalidated(ev: _Events, attr: str, after: int, before: int) -> bool:
    """True when ``attr`` is re-read in a guard test in (after, before]."""
    return any(
        a == attr and after < line <= before for a, line in ev.test_reads
    )


class RaceChecker:
    def __init__(
        self,
        index: ProgramIndex,
        modules: Sequence[str],
    ) -> None:
        self.index = index
        self.modules = tuple(modules)
        self.reachable = self._handler_closure()
        self.attr_users = self._attr_users()
        #: RaceWindow per finding of the most recent :meth:`run`, aligned
        #: with the returned findings (same sort order).
        self.last_windows: List[RaceWindow] = []

    def in_scope(self, module: str) -> bool:
        if not module or module.endswith(".py"):
            return True
        return any(fnmatch.fnmatchcase(module, pat) for pat in self.modules)

    def _handler_closure(self) -> Set[str]:
        seeds = {
            qname
            for qname, fn in self.index.functions.items()
            if fn.is_handler
        }
        return self.index.call_closure(seeds)

    def _attr_users(self) -> Dict[Tuple[str, str], Set[str]]:
        """(class qname, attr) -> handler-reachable methods touching it."""
        users: Dict[Tuple[str, str], Set[str]] = {}
        for qname, fn in self.index.functions.items():
            if fn.cls is None or qname not in self.reachable:
                continue
            for node in _walk_no_nested(fn.node):
                attr = _self_attr(node)
                if attr is not None:
                    users.setdefault((fn.cls, attr), set()).add(qname)
        return users

    def _note_window(
        self,
        finding: Finding,
        fn: FunctionInfo,
        attr: Optional[str],
        yield_line: Optional[int],
    ) -> None:
        key = (finding.rule, finding.path, finding.line, finding.col)
        self._window_map[key] = RaceWindow(
            rule=finding.rule,
            path=finding.path,
            line=finding.line,
            fn_qname=fn.qname,
            cls=fn.cls,
            attr=attr,
            yield_line=yield_line,
        )

    # -- per-function checks --------------------------------------------------

    def _check_toctou(
        self, fn: FunctionInfo, ev: _Events, reported: Set[Tuple[str, int]]
    ) -> List[Finding]:
        findings: List[Finding] = []
        for stmt in _walk_no_nested(fn.node):
            if not isinstance(stmt, ast.If):
                continue
            guard_attrs = {
                _self_attr(sub)
                for sub in ast.walk(stmt.test)
                if _self_attr(sub) is not None
            }
            if not guard_attrs:
                continue
            end = stmt.end_lineno or stmt.lineno
            region = range(stmt.lineno + 1, end + 1)
            region_awaits = [a for a in ev.awaits if a in region]
            if not region_awaits:
                continue
            for attr, wline in ev.writes:
                if attr not in guard_attrs or wline not in region:
                    continue
                prior = [a for a in region_awaits if a <= wline]
                if not prior:
                    continue
                yield_line = max(prior)
                if _revalidated(ev, attr, yield_line, wline):
                    continue
                if (attr, wline) in reported:
                    continue
                reported.add((attr, wline))
                findings.append(
                    Finding(
                        "Y601",
                        fn.path,
                        wline,
                        0,
                        f"'self.{attr}' guards this branch (line "
                        f"{stmt.lineno}) but is written after the await "
                        f"at line {yield_line} without re-validation: a "
                        f"concurrent activation can invalidate the guard "
                        f"while suspended",
                    )
                )
                self._note_window(findings[-1], fn, attr, yield_line)
        return findings

    def _check_shared_state(
        self, fn: FunctionInfo, ev: _Events, reported: Set[Tuple[str, int]]
    ) -> List[Finding]:
        findings: List[Finding] = []
        if fn.cls is None or not ev.awaits:
            return findings
        for attr, wline in ev.writes:
            others = self.attr_users.get((fn.cls, attr), set()) - {fn.qname}
            if not others:
                continue
            prior = [a for a in ev.awaits if a <= wline]
            if not prior:
                continue
            yield_line = max(prior)
            read_before = any(
                a == attr and line < yield_line for a, line in ev.reads
            )
            if not read_before:
                continue
            if _revalidated(ev, attr, yield_line, wline):
                continue
            if (attr, wline) in reported:
                continue
            reported.add((attr, wline))
            handlers = ", ".join(sorted(q.rsplit(":", 1)[-1] for q in others))
            findings.append(
                Finding(
                    "Y602",
                    fn.path,
                    wline,
                    0,
                    f"'self.{attr}' is read before the await at line "
                    f"{yield_line} and written after it, but is also "
                    f"touched by {handlers}; re-check it after the yield "
                    f"or the write clobbers concurrent updates",
                )
            )
            self._note_window(findings[-1], fn, attr, yield_line)
        return findings

    def _check_busy_flags(self, fn: FunctionInfo, ev: _Events) -> List[Finding]:
        findings: List[Finding] = []
        sets: List[Tuple[str, int]] = []
        clears: Dict[str, List[int]] = {}
        protected: Dict[str, List[Tuple[int, int]]] = {}
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Constant
            ):
                for target in node.targets:
                    attr = _self_attr(target)
                    if attr is None or not _is_busy_name(attr):
                        continue
                    if node.value.value is True:
                        sets.append((attr, node.lineno))
                    elif node.value.value in (False, None):
                        clears.setdefault(attr, []).append(node.lineno)
            elif isinstance(node, ast.Try):
                resets: Set[str] = set()
                for cleanup in list(node.finalbody) + [
                    s for h in node.handlers for s in h.body
                ]:
                    for sub in ast.walk(cleanup):
                        attr = _self_attr(sub)
                        if attr is not None and isinstance(sub.ctx, ast.Store):
                            resets.add(attr)
                span = (node.lineno, node.end_lineno or node.lineno)
                for attr in resets:
                    protected.setdefault(attr, []).append(span)
        fn_end = fn.node.end_lineno or fn.lineno
        for attr, sline in sets:
            later_clears = [c for c in clears.get(attr, []) if c > sline]
            held_until = min(later_clears) if later_clears else fn_end
            for a in ev.awaits:
                if not sline < a <= held_until:
                    continue
                if any(
                    lo <= a <= hi for lo, hi in protected.get(attr, [])
                ):
                    continue
                findings.append(
                    Finding(
                        "Y603",
                        fn.path,
                        a,
                        0,
                        f"await while 'self.{attr}' is held (set at line "
                        f"{sline}); an exception here wedges the flag — "
                        f"reset it in a try/finally",
                    )
                )
                self._note_window(findings[-1], fn, attr, a)
                break  # one finding per critical section
        return findings

    def _check_fire_and_forget(
        self, fn: FunctionInfo, ev: _Events
    ) -> List[Finding]:
        findings: List[Finding] = []
        name_loads: List[Tuple[str, int]] = []
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                name_loads.append((node.id, node.lineno))
        for node in _walk_no_nested(fn.node):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                if _call_name(node.value) in TASK_SPAWNERS:
                    findings.append(
                        Finding(
                            "Y604",
                            fn.path,
                            node.lineno,
                            node.col_offset,
                            f"result of {_call_name(node.value)}() is "
                            f"discarded; the task's exceptions are never "
                            f"retrieved — keep a reference and attach a "
                            f"done callback or await it",
                        )
                    )
                    self._note_window(findings[-1], fn, None, None)
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                if _call_name(node.value) not in TASK_SPAWNERS:
                    continue
                if len(node.targets) != 1 or not isinstance(
                    node.targets[0], ast.Name
                ):
                    continue  # stored on self/container: reference kept
                var = node.targets[0].id
                used_later = any(
                    name == var and line > node.lineno
                    for name, line in name_loads
                )
                if not used_later:
                    findings.append(
                        Finding(
                            "Y604",
                            fn.path,
                            node.lineno,
                            node.col_offset,
                            f"task assigned to '{var}' is never awaited, "
                            f"cancelled, or given a done callback; its "
                            f"exceptions are dropped",
                        )
                    )
                    self._note_window(findings[-1], fn, None, None)
        return findings

    # -- driver ---------------------------------------------------------------

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        self._window_map: Dict[Tuple[str, str, int, int], RaceWindow] = {}
        for fn in sorted(
            self.index.functions.values(), key=lambda f: (f.path, f.lineno)
        ):
            if not self.in_scope(fn.module):
                continue
            if not isinstance(fn.node, ast.AsyncFunctionDef):
                continue
            ev = _collect_events(fn.node)
            findings.extend(self._check_fire_and_forget(fn, ev))
            if fn.qname not in self.reachable:
                continue
            reported: Set[Tuple[str, int]] = set()
            findings.extend(self._check_toctou(fn, ev, reported))
            findings.extend(self._check_shared_state(fn, ev, reported))
            findings.extend(self._check_busy_flags(fn, ev))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        self.last_windows = [
            self._window_map[(f.rule, f.path, f.line, f.col)] for f in findings
        ]
        return findings
