"""Protocol-invariant verifiers (DESIGN.md §5h).

Two analyzers over the PR-5 program index:

- :func:`analyze_quorum` — symbolic quorum-arithmetic checking
  (Q501-Q505): every threshold comparison/truncation over ``n``/``t``
  must match a declared obligation, proven over all admissible
  ``(n, t)`` with ``n >= 3t+1``.
- :func:`analyze_races` — asyncio yield-point atomicity checking
  (Y601-Y604) over dispatcher-reachable ``async def`` handlers.

Both honor ``# repro-lint: disable=`` suppressions and feed the same
ratcheting baseline and SARIF output as the core linter and the taint
engine.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.framework import Finding, LintConfig, Suppression
from repro.taint.indexer import ProgramIndex, module_files

from .quorum import QuorumChecker
from .races import RaceChecker, RaceWindow
from .specs import (
    DEFAULT_QUORUM_MODULES,
    DEFAULT_RACES_MODULES,
    QUORUM_RULES,
    RACE_RULES,
)

__all__ = [
    "QUORUM_RULES",
    "RACE_RULES",
    "RaceWindow",
    "analyze_quorum",
    "analyze_races",
    "race_windows",
    "analyze",
]

Files = Sequence[Tuple[Path, str, str]]


def _filter_suppressed(
    findings: List[Finding],
    files: Files,
    suppressions: Optional[Dict[str, List[Suppression]]],
) -> List[Finding]:
    from repro.lint.framework import parse_suppression_comments

    if suppressions is None:
        suppressions = {
            path.as_posix(): parse_suppression_comments(source)
            for path, _module, source in files
        }
    kept: List[Finding] = []
    for f in findings:
        shields = [
            s for s in suppressions.get(f.path, []) if s.shields(f.rule, f.line)
        ]
        if shields:
            for s in shields:
                s.used.add(f.rule)
            continue
        kept.append(f)
    return kept


def analyze_quorum(
    files: Files,
    config: Optional[LintConfig] = None,
    suppressions: Optional[Dict[str, List[Suppression]]] = None,
    index: Optional[ProgramIndex] = None,
) -> List[Finding]:
    """Quorum-arithmetic checking over (path, module, source) triples."""
    config = config or LintConfig()
    index = index or ProgramIndex.build(files)
    modules = tuple(config.quorum_modules) or DEFAULT_QUORUM_MODULES
    findings = QuorumChecker(index, files, modules).run()
    return _filter_suppressed(findings, files, suppressions)


def analyze_races(
    files: Files,
    config: Optional[LintConfig] = None,
    suppressions: Optional[Dict[str, List[Suppression]]] = None,
    index: Optional[ProgramIndex] = None,
) -> List[Finding]:
    """Yield-point atomicity checking over (path, module, source) triples."""
    config = config or LintConfig()
    index = index or ProgramIndex.build(files)
    modules = tuple(config.races_modules) or DEFAULT_RACES_MODULES
    findings = RaceChecker(index, modules).run()
    return _filter_suppressed(findings, files, suppressions)


def race_windows(
    files: Files,
    config: Optional[LintConfig] = None,
    suppressions: Optional[Dict[str, List[Suppression]]] = None,
    index: Optional[ProgramIndex] = None,
) -> List[Tuple[Finding, RaceWindow]]:
    """Race findings paired with their structured await windows.

    Same filtering as :func:`analyze_races`; used by ``repro explore
    --confirm-races`` to search for a schedule exercising each window.
    """
    config = config or LintConfig()
    index = index or ProgramIndex.build(files)
    modules = tuple(config.races_modules) or DEFAULT_RACES_MODULES
    checker = RaceChecker(index, modules)
    findings = checker.run()
    by_key = {
        (f.rule, f.path, f.line, f.col): w
        for f, w in zip(findings, checker.last_windows, strict=True)
    }
    kept = _filter_suppressed(findings, files, suppressions)
    return [(f, by_key[(f.rule, f.path, f.line, f.col)]) for f in kept]


def analyze(
    paths: Sequence[Path],
    root: Path,
    config: Optional[LintConfig] = None,
    quorum: bool = True,
    races: bool = True,
) -> List[Finding]:
    """Convenience wrapper: both analyzers over files under ``paths``."""
    files = module_files(paths, root)
    index = ProgramIndex.build(files)
    findings: List[Finding] = []
    if quorum:
        findings.extend(analyze_quorum(files, config=config, index=index))
    if races:
        findings.extend(analyze_races(files, config=config, index=index))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
