"""Rule catalogs and the per-site obligation spec table (DESIGN.md §5h).

Every threshold comparison or certificate truncation over the protocol
parameters must be *declared*: either inline ::

    if len(pool) >= self.n - self.t:   # repro-quorum: intersect

or centrally in :data:`QUORUM_SPEC` below, keyed by (module glob,
function glob, canonical expression text).  The checker then proves the
declared obligation over every admissible ``(n, t)`` — an undeclared or
unprovable site is a finding.

Obligation kinds
----------------

``intersect``
    The guarded quorum Q must pairwise-intersect any same-kind quorum in
    at least ``t+1`` replicas: ``2Q - n >= t+1``.  This is the paper's
    G1 safety core — it makes conflicting certificates impossible.
``final-overlap``
    Q must overlap the honest part of any ``n-t`` collection:
    ``Q >= 2t+1`` (so Q contains >= t+1 honest members, and any
    ``n-t``-sized recovery pool hears from at least one of them).
``honest-majority``
    Q must contain more honest than Byzantine members: ``Q >= 2t+1``.
``amplify``
    Q must contain at least one honest sender: ``Q >= t+1``.
``threshold-sig``
    Q shares suffice to assemble the threshold signature: ``Q >= t+1``
    (the dealer uses degree-``t`` polynomials).
``reconstruct``
    Erasure-coded reconstruction threshold (DESIGN.md §5i): decoding
    needs ``n-2t`` fragments, which is ``>= t+1`` for every admissible
    ``n >= 3t+1`` and ``<= n-t`` so honest fragments alone suffice.
``truncate:<expr>``
    A slice bound must keep at least ``<expr>`` elements — never
    truncate a certificate below the quorum it certifies.
``cap:<expr>``
    A per-sender/per-pool admission cap must admit at least ``<expr>``
    entries (rejecting legitimate volume re-opens the PR-5 censorship
    vector the caps were added to close).
``identity-bound``
    A replica-identity range check; the bound must be exactly ``n``.
``config``
    A deployment-validation guard (constructor/``__post_init__``); no
    arithmetic obligation.
``window``
    A performance/lookahead cap that certifies nothing; declared so the
    triage rule stays quiet.
``declared``
    Reviewed, deliberately exempt (e.g. leader-rotation ``% n``
    arithmetic the linear model cannot express).

Every quorum-sized kind additionally checks liveness ``Q <= n - t``:
a quorum that needs Byzantine cooperation never forms.
"""

from __future__ import annotations

from typing import Dict, Tuple

# -- rule catalogs ------------------------------------------------------------

QUORUM_RULES: Dict[str, Tuple[str, str]] = {
    "Q501": (
        "quorum intersection violated",
        "Two quorums of this kind may fail to intersect in t+1 replicas "
        "for some admissible (n, t) with n >= 3t+1, so conflicting "
        "certificates can form.  A 2t+1 quorum is only safe when "
        "n == 3t+1 exactly; the general-n intersection quorum is n-t.",
    ),
    "Q502": (
        "certificate truncated below its quorum",
        "A slice like [: k] keeps fewer signatures than the quorum the "
        "certificate claims to certify for some admissible (n, t); "
        "downstream validators will reject it or, worse, accept a "
        "sub-quorum certificate.",
    ),
    "Q503": (
        "honest-sender amplification bound violated",
        "A guard that amplifies a message (join/echo/adopt) fires on a "
        "sender set that may be entirely Byzantine for some admissible "
        "(n, t); amplification guards need >= t+1 senders, "
        "honest-majority decisions >= 2t+1.",
    ),
    "Q504": (
        "admission cap inconsistent with pool bounds",
        "A per-sender or per-pool admission cap rejects entries that a "
        "correct run can legitimately produce for some admissible "
        "(n, t), stalling liveness (or a range check admits replica "
        "identities outside 0..n-1).",
    ),
    "Q505": (
        "undeclared threshold comparison",
        "A comparison mentioning the protocol parameters n/t matches no "
        "declared obligation (spec table or inline '# repro-quorum:' "
        "comment).  Declare its kind so the checker can prove it, or "
        "mark it 'declared' with a justification.",
    ),
}

RACE_RULES: Dict[str, Tuple[str, str]] = {
    "Y601": (
        "lost update across await (TOCTOU)",
        "An await interposes between a guard that reads a protocol field "
        "and a write the guard protects, with no re-validation after the "
        "yield; a concurrent handler activation can invalidate the guard "
        "while this one is suspended.",
    ),
    "Y602": (
        "shared handler state mutated across await",
        "A field read before an await and written after it is also "
        "touched by other dispatcher-reachable handlers; without a "
        "re-check after the yield the write can clobber a concurrent "
        "activation's update.",
    ),
    "Y603": (
        "busy/session flag held across await without finally",
        "A _busy-style flag is set and an await runs while it is held, "
        "but the reset is not guaranteed by a try/finally; an exception "
        "at the yield point wedges the flag and deadlocks the session.",
    ),
    "Y604": (
        "fire-and-forget task drops exceptions",
        "asyncio.create_task/ensure_future result is discarded, so the "
        "task's exceptions vanish into the 'Task exception was never "
        "retrieved' log; keep a reference and attach a done callback or "
        "await it.",
    ),
}

# -- analyzer scopes ----------------------------------------------------------

#: Modules whose threshold arithmetic the quorum checker verifies.
DEFAULT_QUORUM_MODULES: Tuple[str, ...] = (
    "repro.broadcast.*",
    "repro.crypto.protocols",
    "repro.crypto.shoup",
)

#: Modules whose async handlers the yield-point checker verifies.
DEFAULT_RACES_MODULES: Tuple[str, ...] = ("repro.*",)

#: Attribute-name fragments that mark a field as a busy/session flag.
BUSY_FLAG_HINTS: Tuple[str, ...] = ("busy", "lock", "inflight", "in_flight")

#: Call names that spawn a task whose exceptions vanish if unreferenced.
TASK_SPAWNERS: Tuple[str, ...] = ("create_task", "ensure_future")

#: Comment marker declaring a site's obligation inline.
INLINE_MARKER = "repro-quorum"

# -- the spec table -----------------------------------------------------------

#: (module glob, function glob, canonical expr text, obligation kind).
#:
#: ``expr`` is the canonical :meth:`LinExpr.render` form ("n-t",
#: "2t+1", ...) for linear sites, or the exact ``ast.unparse`` text for
#: sites the linear model cannot normalize ("msg.epoch % self.n").  A
#: comparison site is declared when *any* of its n/t-linear operands
#: matches an entry; slice sites only match truncate/window/declared
#: kinds and comparison sites only the rest.
QUORUM_SPEC: Tuple[Tuple[str, str, str, str], ...] = (
    # -- repro.broadcast.abc: atomic broadcast (paper §2.3/§3.4) ----------
    ("repro.broadcast.abc", "__init__", "3t", "config"),
    ("repro.broadcast.abc", "__init__", "n", "config"),
    # Prepare-phase certificate quorum: two prepare certificates for the
    # same slot must share an honest signer, else G1 breaks.
    ("repro.broadcast.abc", "_on_order", "n-t", "intersect"),
    ("repro.broadcast.abc", "_on_prepare", "n-t", "intersect"),
    ("repro.broadcast.abc", "_form_certificate", "n-t", "truncate:n-t"),
    ("repro.broadcast.abc", "_validate_certificate", "n-t", "intersect"),
    ("repro.broadcast.abc", "_validate_certificate", "n", "identity-bound"),
    ("repro.broadcast.abc", "_verify_prepare", "n", "identity-bound"),
    # Commit quorum: 2t+1 commits guarantee >= t+1 honest certificate
    # holders, which overlaps every n-t epoch-final recovery pool.
    ("repro.broadcast.abc", "_on_commit", "2t+1", "final-overlap"),
    ("repro.broadcast.abc", "_on_complain", "t+1", "amplify"),
    ("repro.broadcast.abc", "_on_complain", "2t+1", "honest-majority"),
    ("repro.broadcast.abc", "_on_epoch_final", "n-t", "intersect"),
    ("repro.broadcast.abc", "_on_epoch_final", "n-t", "truncate:n-t"),
    # Leader rotation is modular arithmetic; outside the linear model.
    ("repro.broadcast.abc", "_on_epoch_final", "next_epoch % self.n", "declared"),
    ("repro.broadcast.abc", "_on_new_epoch", "msg.epoch % self.n", "declared"),
    ("repro.broadcast.abc", "_validate_new_epoch", "n", "identity-bound"),
    ("repro.broadcast.abc", "_validate_new_epoch", "n-t", "intersect"),
    # Digest-mode pull serving: requester identity bounds the per-peer
    # serve budget table.
    ("repro.broadcast.abc", "_on_pull", "n", "identity-bound"),
    # Erasure dissemination: fragment indices are replica identities, and
    # any n-2t verified fragments reconstruct the request payload.
    ("repro.broadcast.abc", "_on_frag", "n", "identity-bound"),
    ("repro.broadcast.abc", "_on_frag", "n-2t", "reconstruct"),
    # -- repro.broadcast.rbc: Bracha reliable broadcast -------------------
    ("repro.broadcast.rbc", "__init__", "3t", "config"),
    # Echo votes (payload-carrying or digest-only) funnel into one
    # counter; the quorum must pairwise-intersect in an honest replica.
    ("repro.broadcast.rbc", "_count_echo", "n-t", "intersect"),
    ("repro.broadcast.rbc", "_on_ready", "t+1", "amplify"),
    ("repro.broadcast.rbc", "_ready_quorum", "2t+1", "honest-majority"),
    # Erasure mode: fragment indices are replica identities; t+1 echoes
    # prove an honest echoer vouches for the root; n-2t fragments decode.
    ("repro.broadcast.rbc", "_on_val", "n", "identity-bound"),
    ("repro.broadcast.rbc", "_on_frag", "n", "identity-bound"),
    ("repro.broadcast.rbc", "_on_frag", "t+1", "amplify"),
    ("repro.broadcast.rbc", "_reconstruct", "n-2t", "reconstruct"),
    # -- repro.broadcast.aba: binary agreement -----------------------------
    ("repro.broadcast.aba", "__init__", "3t", "config"),
    ("repro.broadcast.aba", "_on_est", "t+1", "amplify"),
    ("repro.broadcast.aba", "_on_est", "2t+1", "honest-majority"),
    ("repro.broadcast.aba", "_try_finish_round", "n-t", "intersect"),
    ("repro.broadcast.aba", "_on_decided", "t+1", "amplify"),
    # -- repro.broadcast.coin: threshold common coin -----------------------
    ("repro.broadcast.coin", "_accept_share", "t+1", "threshold-sig"),
    ("repro.broadcast.coin", "_accept_share", "t+1", "truncate:t+1"),
    # -- repro.crypto.protocols: Shoup signing sessions (paper §3.5) ------
    ("repro.crypto.protocols", "_try_finish", "t+1", "threshold-sig"),
    ("repro.crypto.protocols", "_try_finish", "t+1", "truncate:t+1"),
    ("repro.crypto.protocols", "_try_fallback", "t+1", "threshold-sig"),
    ("repro.crypto.protocols", "_try_fallback", "t+1", "truncate:t+1"),
    # Pipelining lookahead: batches at most t buffered proofs ahead of
    # the session; certifies nothing.
    ("repro.crypto.protocols", "prefetch", "t", "window"),
    ("repro.crypto.protocols", "_store_share", "n", "identity-bound"),
    # -- repro.crypto.shoup: threshold-RSA primitive ----------------------
    ("repro.crypto.shoup", "__post_init__", "n", "config"),
    ("repro.crypto.shoup", "__post_init__", "t", "config"),
    ("repro.crypto.shoup", "share_verifier", "n", "identity-bound"),
    ("repro.crypto.shoup", "verify_share", "n", "identity-bound"),
    ("repro.crypto.shoup", "assemble", "t+1", "threshold-sig"),
    ("repro.crypto.shoup", "assemble", "t+1", "truncate:t+1"),
    ("repro.crypto.shoup", "assemble", "n", "identity-bound"),
)
