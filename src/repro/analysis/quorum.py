"""Quorum-arithmetic checker (Q501-Q505, DESIGN.md §5h).

Walks every function the PR-5 indexer knows about in the configured
scope, extracts *threshold sites* — comparisons and slice bounds that
mention the protocol parameters ``n``/``t`` — normalizes them with the
:mod:`repro.analysis.linexpr` algebra, resolves each site's declared
obligation (inline ``# repro-quorum:`` comment first, then the central
:data:`~repro.analysis.specs.QUORUM_SPEC` table), and proves the
obligation over every admissible ``(n, t)``.  Failures carry the first
concrete counterexample deployment.

Known unsoundness (documented, deliberate): no constant propagation —
``needed = self.t + 1`` followed by ``len(pool) >= needed`` is invisible
because ``needed`` is a plain local at the comparison.  Keep thresholds
literal in guards (the codebase convention) so the checker sees them.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.lint.framework import Finding
from repro.taint.indexer import FunctionInfo, ProgramIndex

from .linexpr import (
    LinExpr,
    N,
    T,
    ONE,
    first_failure,
    mentions_params,
    parse_expr_text,
    parse_linear,
)
from .specs import INLINE_MARKER, QUORUM_SPEC

_INLINE_RE = re.compile(
    rf"#\s*{INLINE_MARKER}:\s*([A-Za-z\-]+(?::[^#\s]+)?)"
)

#: Kinds whose obligation is a lower bound on the quorum size Q,
#: expressed as (bound, rule-on-failure).
_QUORUM_KINDS: Dict[str, Tuple[LinExpr, str]] = {
    "intersect": (LinExpr(), "Q501"),  # special-cased: 2Q-n >= t+1
    "final-overlap": (T.scale(2) + ONE, "Q503"),
    "honest-majority": (T.scale(2) + ONE, "Q503"),
    "amplify": (T + ONE, "Q503"),
    "threshold-sig": (T + ONE, "Q503"),
    # Erasure reconstruction needs n-2t fragments; n-2t >= t+1 for every
    # admissible n >= 3t+1, and n-2t <= n-t keeps it honest-reachable.
    "reconstruct": (T + ONE, "Q503"),
}

_NO_CHECK_KINDS = ("config", "window", "declared")


@dataclass(frozen=True)
class Site:
    """One threshold site: a comparison guard or a slice bound."""

    fn: FunctionInfo
    node: ast.AST
    is_slice: bool
    line: int
    col: int
    #: (render-or-unparse text, LinExpr-or-None, threshold-or-None)
    operands: Tuple[Tuple[str, Optional[LinExpr], Optional[LinExpr]], ...]

    @property
    def text(self) -> str:
        try:
            return ast.unparse(self.node)  # type: ignore[arg-type]
        except Exception:  # pragma: no cover - unparse is total on 3.9+
            return "<expr>"


def _walk_no_nested(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested ``def``s
    (those are indexed — and therefore visited — separately)."""
    stack = list(ast.iter_child_nodes(fn_node))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _threshold(op: ast.cmpop, expr: LinExpr, mirrored: bool) -> LinExpr:
    """The quorum size Q such that the guard means ``count >= Q``.

    ``mirrored`` means the expression is on the *left* (``E <= count``).
    Both wait-until (``count >= E``) and early-return (``count < E``)
    spellings denote the same quorum E.
    """
    if mirrored:
        if isinstance(op, (ast.LtE, ast.Lt)):  # E <= count / E < count
            return expr if isinstance(op, ast.LtE) else expr + ONE
        if isinstance(op, (ast.GtE, ast.Gt)):  # E >= count / E > count
            return expr + ONE if isinstance(op, ast.GtE) else expr
        return expr
    if isinstance(op, (ast.GtE, ast.Lt)):  # count >= E / count < E
        return expr
    if isinstance(op, (ast.Gt, ast.LtE)):  # count > E / count <= E
        return expr + ONE
    return expr


def _compare_site(fn: FunctionInfo, node: ast.Compare) -> Optional[Site]:
    chain = [node.left] + list(node.comparators)
    if not any(mentions_params(op) for op in chain):
        return None
    operands: List[Tuple[str, Optional[LinExpr], Optional[LinExpr]]] = []
    for pos, operand in enumerate(chain):
        if not mentions_params(operand):
            continue
        expr = parse_linear(operand)
        if expr is None or not expr.mentions_params:
            operands.append((ast.unparse(operand), None, None))
            continue
        # Relate the expression to its neighbour in the chain: the op to
        # the left reads ``neighbour OP expr``; at position 0 the op to
        # the right reads ``expr OP neighbour`` (mirrored).
        if pos > 0:
            quorum = _threshold(node.ops[pos - 1], expr, mirrored=False)
        else:
            quorum = _threshold(node.ops[0], expr, mirrored=True)
        operands.append((expr.render(), expr, quorum))
    if not operands:
        return None
    return Site(fn, node, False, node.lineno, node.col_offset, tuple(operands))


def _slice_site(fn: FunctionInfo, node: ast.Subscript) -> Optional[Site]:
    if not isinstance(node.slice, ast.Slice):
        return None
    upper = node.slice.upper
    if upper is None or not mentions_params(upper):
        return None
    expr = parse_linear(upper)
    if expr is None or not expr.mentions_params:
        operands = ((ast.unparse(upper), None, None),)
    else:
        operands = ((expr.render(), expr, expr),)
    return Site(fn, node, True, node.lineno, node.col_offset, operands)


class QuorumChecker:
    """Extract threshold sites, resolve obligations, prove them."""

    def __init__(
        self,
        index: ProgramIndex,
        files: Sequence[Tuple[object, str, str]],
        modules: Sequence[str],
    ) -> None:
        self.index = index
        self.modules = tuple(modules)
        #: path -> {line: declared kind} from inline comments
        self.inline: Dict[str, Dict[int, str]] = {}
        for path, _module, source in files:
            decls: Dict[int, str] = {}
            for lineno, line in enumerate(source.splitlines(), start=1):
                match = _INLINE_RE.search(line)
                if match:
                    decls[lineno] = match.group(1).strip()
            if decls:
                key = path.as_posix() if hasattr(path, "as_posix") else str(path)
                self.inline[key] = decls

    def in_scope(self, module: str) -> bool:
        # Files outside the src layout (tests, corpus fixtures) are keyed
        # by path: always analyzed when explicitly passed.
        if not module or module.endswith(".py"):
            return True
        return any(fnmatch.fnmatchcase(module, pat) for pat in self.modules)

    # -- obligation resolution ------------------------------------------------

    def _inline_kind(self, site: Site) -> Optional[str]:
        decls = self.inline.get(site.fn.path, {})
        if not decls:
            return None
        end = getattr(site.node, "end_lineno", site.line) or site.line
        for lineno in range(site.line - 1, end + 1):
            if lineno in decls:
                return decls[lineno]
        return None

    def _spec_kind(self, site: Site) -> Optional[str]:
        for mod_pat, fn_pat, expr_text, kind in QUORUM_SPEC:
            if not fnmatch.fnmatchcase(site.fn.module, mod_pat):
                continue
            if not fnmatch.fnmatchcase(site.fn.name, fn_pat):
                continue
            if not any(text == expr_text for text, _e, _q in site.operands):
                continue
            if site.is_slice != kind.startswith(("truncate:", "window")):
                if kind != "declared":
                    continue
            return kind
        return None

    # -- obligation checking --------------------------------------------------

    def _check_site(self, site: Site, kind: str) -> Iterator[Finding]:
        def finding(rule: str, message: str) -> Finding:
            return Finding(rule, site.fn.path, site.line, site.col, message)

        if kind in _NO_CHECK_KINDS:
            return
        if kind.startswith(("truncate:", "cap:")):
            base, _, expr_text = kind.partition(":")
            need = parse_expr_text(expr_text)
            if need is None:
                yield finding(
                    "Q505",
                    f"obligation '{kind}' has an unparseable bound "
                    f"'{expr_text}' at '{site.text}'",
                )
                return
            rule = "Q502" if base == "truncate" else "Q504"
            for text, expr, quorum in site.operands:
                if expr is None or quorum is None:
                    yield finding(
                        "Q505",
                        f"'{text}' mentions n/t but does not normalize; "
                        f"cannot prove '{kind}'",
                    )
                    continue
                # For slices the kept count is the bound itself; for cap
                # guards (reject-when-over form, ``if count > cap:``) the
                # admitted count is Q-1.
                kept = quorum if site.is_slice else quorum - ONE
                witness = first_failure(kept, need)
                if witness is not None:
                    n_w, t_w = witness
                    what = "truncates to" if site.is_slice else "admits only"
                    yield finding(
                        rule,
                        f"'{site.text}' {what} {kept.render()} < required "
                        f"{need.render()} at (n={n_w}, t={t_w})",
                    )
            return
        if kind == "identity-bound":
            for text, expr, _quorum in site.operands:
                if expr != N:
                    yield finding(
                        "Q504",
                        f"identity bound '{text}' in '{site.text}' is not "
                        f"exactly n; replica ids range over 0..n-1 "
                        f"(1..n for share indices)",
                    )
            return
        if kind in _QUORUM_KINDS:
            _bound, rule = _QUORUM_KINDS[kind]
            for text, expr, quorum in site.operands:
                if expr is None or quorum is None:
                    yield finding(
                        "Q505",
                        f"'{text}' mentions n/t but does not normalize; "
                        f"cannot prove '{kind}'",
                    )
                    continue
                if kind == "intersect":
                    witness = first_failure(quorum.scale(2) - N, T + ONE)
                    if witness is not None:
                        n_w, t_w = witness
                        overlap = quorum.scale(2) - N
                        yield finding(
                            rule,
                            f"quorum '{text}' declared '{kind}': two "
                            f"quorums may share only "
                            f"{max(overlap.eval(n_w, t_w), 0)} < t+1="
                            f"{t_w + 1} replicas at (n={n_w}, t={t_w}); "
                            f"use n-t for general-n intersection",
                        )
                else:
                    bound = _QUORUM_KINDS[kind][0]
                    witness = first_failure(quorum, bound)
                    if witness is not None:
                        n_w, t_w = witness
                        yield finding(
                            rule,
                            f"quorum '{text}' declared '{kind}' needs >= "
                            f"{bound.render()} but admits "
                            f"{quorum.eval(n_w, t_w)} at (n={n_w}, t={t_w})",
                        )
                # Liveness: the quorum must be reachable from honest
                # replicas alone.
                witness = first_failure(N - T, quorum)
                if witness is not None:
                    n_w, t_w = witness
                    yield finding(
                        rule,
                        f"quorum '{text}' declared '{kind}' exceeds the "
                        f"n-t={n_w - t_w} honest guarantee at "
                        f"(n={n_w}, t={t_w}): liveness lost",
                    )
            return
        yield finding(
            "Q505",
            f"unknown obligation kind '{kind}' declared at '{site.text}'",
        )

    # -- driver ---------------------------------------------------------------

    def run(self) -> List[Finding]:
        findings: List[Finding] = []
        seen: set = set()
        for fn in self.index.functions.values():
            if not self.in_scope(fn.module):
                continue
            for node in _walk_no_nested(fn.node):
                site: Optional[Site] = None
                if isinstance(node, ast.Compare):
                    site = _compare_site(fn, node)
                elif isinstance(node, ast.Subscript):
                    site = _slice_site(fn, node)
                if site is None:
                    continue
                key = (site.fn.path, site.line, site.col)
                if key in seen:
                    continue
                seen.add(key)
                kind = self._inline_kind(site) or self._spec_kind(site)
                if kind is None:
                    what = "slice bound" if site.is_slice else "comparison"
                    findings.append(
                        Finding(
                            "Q505",
                            site.fn.path,
                            site.line,
                            site.col,
                            f"threshold {what} '{site.text}' matches no "
                            f"declared obligation; declare its kind "
                            f"(spec table or '# {INLINE_MARKER}: <kind>')",
                        )
                    )
                    continue
                findings.extend(self._check_site(site, kind))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings
