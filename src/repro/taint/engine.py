"""Interprocedural taint engine (rules T401-T408).

Model (DESIGN.md §5e): every value carries a :class:`Taint` — a set of
*markers* (``"src"`` for real attacker-controlled data, ``"p<i>"`` as a
symbolic stand-in for the i-th parameter of the function under analysis),
the set of rules already *cleared* by sanitizers on this path, a
*laundered* bit set by serialization round-trips, and optional per-field
taints for dataclass message construction.

Each function is summarized as: which parameter markers reach its return
value, which reach sinks inside it (transitively, through its own
callees), and which are stored into ``self.<attr>``.  Summaries are
recomputed to a fixpoint (the lattice is finite: markers/cleared/sink
sites are drawn from fixed sets, so it terminates; a widening cap bounds
pathological recursion).  A final reporting pass walks every function
with real taint bound to handler parameters and class attributes and
emits findings through the standard lint :class:`Finding` machinery.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.lint.framework import Finding, LintConfig

from repro.taint.indexer import (
    FunctionInfo,
    ProgramIndex,
    module_files,
)
from repro.taint.specs import (
    ALLOC_CALLS,
    BOUND_NAME_HINTS,
    CONTROL_STATE_ATTRS,
    DEFAULT_TAINT_MODULES,
    GROWTH_CALLS,
    IDENTITY_ATTRS,
    LAUNDERABLE_RULES,
    SANITIZERS,
    SINK_CALLS,
    SINK_MESSAGE_FIRST,
    SOURCE_CALLS,
    TRUSTED_PRODUCERS,
    UNTAINTED_HANDLER_PARAMS,
    VERDICT_CALLS,
)

#: Widening cap on summary fixpoint rounds (lattice is finite, so this is
#: a safety net for pathological recursion, not the termination argument).
MAX_FIXPOINT_ROUNDS = 12

#: Serialization methods whose output on tainted input is "laundered".
SERIALIZERS = frozenset({"to_bytes", "to_wire", "encode", "serialize", "pack"})


# -- taint lattice ------------------------------------------------------------


@dataclass(frozen=True)
class Taint:
    markers: FrozenSet[str] = frozenset()
    cleared: FrozenSet[str] = frozenset()
    laundered: bool = False
    fields: Tuple[Tuple[str, "Taint"], ...] = ()

    @property
    def is_tainted(self) -> bool:
        return bool(self.markers) or bool(self.fields)

    def clear(self, rules: FrozenSet[str]) -> "Taint":
        if not self.is_tainted:
            return self
        return replace(
            self,
            cleared=self.cleared | rules,
            fields=tuple((n, t.clear(rules)) for n, t in self.fields),
        )

    def field_taint(self, name: str) -> "Taint":
        for fname, ftaint in self.fields:
            if fname == name:
                return ftaint
        if self.markers:
            return Taint(self.markers, self.cleared, self.laundered)
        return EMPTY

    def flat(self) -> "Taint":
        """Collapse field taints into one value (for sink checks)."""
        out = Taint(self.markers, self.cleared, self.laundered)
        for _name, ftaint in self.fields:
            out = merge(out, ftaint.flat())
        return out


EMPTY = Taint()


def merge(a: Taint, b: Taint) -> Taint:
    if not a.is_tainted and not a.fields:
        return b
    if not b.is_tainted and not b.fields:
        return a
    field_names = {n for n, _ in a.fields} | {n for n, _ in b.fields}
    fields = tuple(
        sorted((n, merge(a.field_taint(n), b.field_taint(n))) for n in field_names)
    )
    cleared: FrozenSet[str]
    if a.markers and b.markers:
        cleared = a.cleared & b.cleared
    else:
        cleared = a.cleared | b.cleared
    return Taint(
        markers=a.markers | b.markers,
        cleared=cleared,
        laundered=a.laundered or b.laundered,
        fields=fields,
    )


# -- summaries ----------------------------------------------------------------


@dataclass(frozen=True)
class SinkHit:
    """Inside some function, parameter ``marker`` reaches a ``rule`` sink."""

    marker: str
    rule: str
    path: str
    line: int
    col: int
    message: str


@dataclass(frozen=True)
class Summary:
    returns: Taint = EMPTY
    sink_hits: FrozenSet[SinkHit] = frozenset()
    #: (class qname, attribute, marker, cleared rules, laundered, key):
    #: param flows into self.<attr>.  Carrying the cleared set is what lets
    #: a callee's sanitization (``share_is_valid`` before the store) survive
    #: summary substitution at the call site.  ``key`` is the literal dict
    #: key when the store targeted one slot (``self.cache['soa'] = x``),
    #: else None for whole-attr / dynamic-key stores.
    attr_stores: FrozenSet[
        Tuple[str, str, str, FrozenSet[str], bool, Optional[str]]
    ] = frozenset()
    #: (marker, rules): the callee applied a sanitizer clearing ``rules``
    #: to the parameter bound as ``marker``.  Replayed at call sites so a
    #: sanitizer one call-hop below the sink still triggers T408 when the
    #: caller's value already reached that sink (DESIGN.md §5e).
    sanitizes: FrozenSet[Tuple[str, FrozenSet[str]]] = frozenset()


# -- engine -------------------------------------------------------------------


class TaintEngine:
    def __init__(self, index: ProgramIndex, modules: Tuple[str, ...]) -> None:
        self.index = index
        self.module_patterns = modules or DEFAULT_TAINT_MODULES
        self.summaries: Dict[str, Summary] = {}
        #: (class qname, attr) -> real taint stored cross-function
        #: (whole-attr assignments and dynamic-key stores)
        self.attr_map: Dict[Tuple[str, str], Taint] = {}
        #: (class qname, attr) -> {literal key -> taint}: per-key slots so
        #: a tainted value under one dict key does not taint reads of the
        #: other keys (the T404/T405 over-approximation fix)
        self.attr_keys: Dict[Tuple[str, str], Dict[str, Taint]] = {}
        self.changed = False

    def in_scope(self, fn: FunctionInfo) -> bool:
        import fnmatch

        module = fn.module
        # files outside the src layout (tests, corpus fixtures) are keyed
        # by path: always analyzed when explicitly passed
        if not module or module.endswith(".py"):
            return True
        # "!pattern" entries exclude (and win over inclusions): the fault
        # injector is the modeled adversary, not the defended surface
        for pat in self.module_patterns:
            if pat.startswith("!") and fnmatch.fnmatchcase(module, pat[1:]):
                return False
        return any(
            fnmatch.fnmatchcase(module, pat)
            for pat in self.module_patterns
            if not pat.startswith("!")
        )

    def store_attr(self, cls_qname: str, attr: str, taint: Taint) -> None:
        key = (cls_qname, attr)
        merged = merge(self.attr_map.get(key, EMPTY), taint)
        if merged != self.attr_map.get(key, EMPTY):
            self.attr_map[key] = merged
            self.changed = True

    def store_attr_key(
        self, cls_qname: str, attr: str, key: str, taint: Taint
    ) -> None:
        slots = self.attr_keys.setdefault((cls_qname, attr), {})
        merged = merge(slots.get(key, EMPTY), taint)
        if merged != slots.get(key, EMPTY):
            slots[key] = merged
            self.changed = True

    def read_attr(self, cls_qname: Optional[str], attr: str) -> Taint:
        """Whole-attribute read: merges the wildcard taint and every
        per-key slot (reading the full dict sees all of its values)."""
        if cls_qname is None:
            return EMPTY
        out = EMPTY
        for cls in self.index.mro(cls_qname):
            slot = (cls.qname, attr)
            out = merge(out, self.attr_map.get(slot, EMPTY))
            for keyed in self.attr_keys.get(slot, {}).values():
                out = merge(out, keyed)
        return out

    def read_attr_key(
        self, cls_qname: Optional[str], attr: str, key: str
    ) -> Taint:
        """Literal-key read: the key's own slot plus the wildcard taint
        (dynamic-key stores may have hit any slot), but NOT the other
        literal keys' slots — that is the precision this buys."""
        if cls_qname is None:
            return EMPTY
        out = EMPTY
        for cls in self.index.mro(cls_qname):
            slot = (cls.qname, attr)
            out = merge(out, self.attr_map.get(slot, EMPTY))
            out = merge(out, self.attr_keys.get(slot, {}).get(key, EMPTY))
        return out

    def run(self) -> List[Finding]:
        fns = [fn for fn in self.index.functions.values() if self.in_scope(fn)]
        fns.sort(key=lambda f: f.qname)
        for fn in fns:
            self.summaries[fn.qname] = Summary()
        for _round in range(MAX_FIXPOINT_ROUNDS):
            self.changed = False
            for fn in fns:
                analyzer = FunctionAnalyzer(self, fn, report=False)
                summary = analyzer.analyze()
                if summary != self.summaries[fn.qname]:
                    self.summaries[fn.qname] = summary
                    self.changed = True
            if not self.changed:
                break
        findings: List[Finding] = []
        for fn in fns:
            analyzer = FunctionAnalyzer(self, fn, report=True)
            analyzer.analyze()
            findings.extend(analyzer.findings)
        unique = {(f.rule, f.path, f.line, f.col): f for f in findings}
        return sorted(
            unique.values(), key=lambda f: (f.path, f.line, f.col, f.rule)
        )


def _literal_key(node: ast.expr) -> Optional[str]:
    """Canonical form of a literal subscript key (str/int/bytes constants),
    or None for dynamic keys.  bools are excluded: ``d[ok]`` is almost
    always a computed flag, not a two-slot table."""
    if isinstance(node, ast.Constant) and not isinstance(node.value, bool):
        if isinstance(node.value, (str, int, bytes)):
            return repr(node.value)
    return None


def _expr_text(node: ast.AST, limit: int = 48) -> str:
    try:
        text = ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        text = "<expr>"
    return text if len(text) <= limit else text[: limit - 3] + "..."


class FunctionAnalyzer(ast.NodeVisitor):
    """One flow-sensitive pass over a function body."""

    def __init__(self, engine: TaintEngine, fn: FunctionInfo, report: bool) -> None:
        self.engine = engine
        self.index = engine.index
        self.fn = fn
        self.report = report
        self.findings: List[Finding] = []
        self.sink_hits: Set[SinkHit] = set()
        self.attr_stores: Set[
            Tuple[str, str, str, FrozenSet[str], bool, Optional[str]]
        ] = set()
        #: (marker, rules) sanitizer applications to parameters, exported
        #: in the summary for the cross-function T408 check
        self.sanitizes: Set[Tuple[str, FrozenSet[str]]] = set()
        self.return_taint = EMPTY
        #: collections (self-attr or local names) with a membership/len guard
        self.guarded: Set[str] = set()
        #: path -> [(rule, line)] sinks already hit (for T408)
        self.sunk: Dict[str, List[Tuple[str, int]]] = {}
        #: local name -> self-attr it aliases (setdefault/get/subscript)
        self.aliases: Dict[str, str] = {}
        #: local name -> rules its per-item verdicts clear (VERDICT_CALLS)
        self.verdict_lists: Dict[str, FrozenSet[str]] = {}
        #: bool name -> (paired item name, rules) from a verdict zip
        self.verdict_guards: Dict[str, Tuple[str, FrozenSet[str]]] = {}

    # -- entry ----------------------------------------------------------------

    def analyze(self) -> Summary:
        env: Dict[str, Taint] = {}
        node = self.fn.node
        params = self.fn.params
        for i, name in enumerate(params):
            if name in ("self", "cls"):
                continue
            markers = {f"p{i}"}
            if self.fn.is_handler and name not in UNTAINTED_HANDLER_PARAMS:
                markers.add("src")
            env[name] = Taint(frozenset(markers))
        if isinstance(node, ast.Lambda):
            self.return_taint = merge(self.return_taint, self.eval(node.body, env))
        else:
            self.exec_block(node.body, env)
        returns = Taint(
            markers=frozenset(
                m for m in self.return_taint.markers if m == "src" or m.startswith("p")
            ),
            cleared=self.return_taint.cleared,
            laundered=self.return_taint.laundered,
        )
        return Summary(
            returns=returns,
            sink_hits=frozenset(self.sink_hits),
            attr_stores=frozenset(self.attr_stores),
            sanitizes=frozenset(self.sanitizes),
        )

    # -- statements -----------------------------------------------------------

    def exec_block(self, stmts: Sequence[ast.stmt], env: Dict[str, Taint]) -> bool:
        """Execute statements in order; True if the block terminated
        (return/raise/break/continue) before falling through."""
        for stmt in stmts:
            if self.exec_stmt(stmt, env):
                return True
        return False

    def exec_stmt(self, stmt: ast.stmt, env: Dict[str, Taint]) -> bool:
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value, env)
            for target in stmt.targets:
                self.assign(target, taint, env, stmt)
                self._track_alias(target, stmt.value)
                self._track_verdict(target, stmt.value)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.assign(stmt.target, self.eval(stmt.value, env), env, stmt)
                self._track_alias(stmt.target, stmt.value)
            return False
        if isinstance(stmt, ast.AugAssign):
            taint = merge(self.eval(stmt.target, env), self.eval(stmt.value, env))
            self.assign(stmt.target, taint, env, stmt)
            return False
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
            return False
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taint = merge(self.return_taint, self.eval(stmt.value, env))
            return True
        if isinstance(stmt, (ast.Raise, ast.Break, ast.Continue)):
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self.eval(stmt.exc, env)
            return True
        if isinstance(stmt, ast.If):
            self.eval(stmt.test, env)  # guard side effects (clears)
            then_env = dict(env)
            else_env = dict(env)
            guard = self._verdict_guard_in_test(stmt.test)
            if guard is not None:
                item, rules, positive = guard
                # a verdict guard is a comparison, not a late sanitizer
                # call, so it clears without the T408 check
                self.clear_path(
                    then_env if positive else else_env,
                    item,
                    rules,
                    stmt.lineno,
                )
            then_done = self.exec_block(stmt.body, then_env)
            else_done = self.exec_block(stmt.orelse, else_env)
            if then_done and else_done:
                return True
            if then_done:
                env.clear()
                env.update(else_env)
            elif else_done:
                env.clear()
                env.update(then_env)
            else:
                merged = self.merge_envs(then_env, else_env)
                env.clear()
                env.update(merged)
            return False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            target, it = stmt.target, stmt.iter
            if (
                isinstance(target, ast.Tuple)
                and isinstance(it, (ast.Tuple, ast.List))
                and it.elts
                and all(
                    isinstance(e, (ast.Tuple, ast.List))
                    and len(e.elts) == len(target.elts)
                    for e in it.elts
                )
            ):
                # literal ``for a, b in ((x, n1), (y, n2))``: bind each
                # target position to the merge of that column only, so a
                # bounds-cleared count does not re-absorb unrelated taint
                for i, tgt in enumerate(target.elts):
                    taint = EMPTY
                    for e in it.elts:
                        taint = merge(taint, self.eval(e.elts[i], env))  # type: ignore[attr-defined]
                    self.bind_loop_target(tgt, taint, env)
            elif self._bind_verdict_zip(target, it, env):
                pass
            else:
                iter_taint = self.eval(it, env)
                self.bind_loop_target(target, iter_taint, env)
            # two passes so loop-carried taint stabilizes
            for _ in range(2):
                body_env = dict(env)
                self.exec_block(stmt.body, body_env)
                merged = self.merge_envs(env, body_env)
                env.clear()
                env.update(merged)
            self.exec_block(stmt.orelse, env)
            return False
        if isinstance(stmt, ast.While):
            self.eval(stmt.test, env)
            for _ in range(2):
                body_env = dict(env)
                self.exec_block(stmt.body, body_env)
                merged = self.merge_envs(env, body_env)
                env.clear()
                env.update(merged)
            self.exec_block(stmt.orelse, env)
            return False
        if isinstance(stmt, ast.Try):
            done = self.exec_block(stmt.body, env)
            for handler in stmt.handlers:
                handler_env = dict(env)
                self.exec_block(handler.body, handler_env)
                merged = self.merge_envs(env, handler_env)
                env.clear()
                env.update(merged)
            self.exec_block(stmt.orelse, env)
            final_done = self.exec_block(stmt.finalbody, env)
            return (done and not stmt.handlers) or final_done
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self.assign(item.optional_vars, taint, env, stmt)
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            return False
        # nested defs/classes/imports/global: no taint effect modeled
        return False

    def merge_envs(
        self, a: Dict[str, Taint], b: Dict[str, Taint]
    ) -> Dict[str, Taint]:
        out: Dict[str, Taint] = {}
        for key in set(a) | set(b):
            out[key] = merge(a.get(key, EMPTY), b.get(key, EMPTY))
        return out

    def bind_loop_target(
        self, target: ast.expr, taint: Taint, env: Dict[str, Taint]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.bind_loop_target(elt, taint, env)

    # -- assignment targets ---------------------------------------------------

    def assign(
        self,
        target: ast.expr,
        taint: Taint,
        env: Dict[str, Taint],
        stmt: ast.stmt,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = taint
            for prefix in (target.id + ".", target.id + "["):
                for key in [k for k in env if k.startswith(prefix)]:
                    del env[key]
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = taint
                if isinstance(elt, ast.Starred):
                    elt = elt.value
                self.assign(elt, inner, env, stmt)
            return
        if isinstance(target, ast.Attribute):
            path = self.path_of(target)
            if path is not None:
                env[path] = taint
                # whole-value assignment invalidates stale per-key slots
                prefix = path + "["
                for key in [k for k in env if k.startswith(prefix)]:
                    del env[key]
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self.fn.cls is not None
            ):
                attr = target.attr
                flat = taint.flat()
                if attr in CONTROL_STATE_ATTRS:
                    value = getattr(stmt, "value", None)
                    self.hit_sink(
                        "T402",
                        flat,
                        stmt,
                        f"control state self.{attr} assigned from "
                        f"'{_expr_text(stmt)}' without certificate/"
                        "signature validation on this path",
                        self.paths_in(value) if value is not None else (),
                    )
                if "src" in flat.markers:
                    self.engine.store_attr(
                        self.fn.cls,
                        attr,
                        Taint(frozenset({"src"}), flat.cleared, flat.laundered),
                    )
                for marker in flat.markers:
                    if marker.startswith("p"):
                        self.attr_stores.add(
                            (
                                self.fn.cls,
                                attr,
                                marker,
                                flat.cleared,
                                flat.laundered,
                                None,
                            )
                        )
            return
        if isinstance(target, ast.Subscript):
            key_taint = self.eval(target.slice, env).flat()
            base_path = self.path_of(target.value)
            self.check_growth(target.value, target.slice, key_taint, stmt)
            # the collection now holds the assigned *value* (keys are
            # checked by T404/T406 above, not mixed into content taint)
            direct_self = (
                isinstance(target.value, ast.Attribute)
                and isinstance(target.value.value, ast.Name)
                and target.value.value.id == "self"
            )
            attr: Optional[str] = None
            if direct_self:
                attr = target.value.attr  # type: ignore[union-attr]
            elif isinstance(target.value, ast.Name):
                attr = self.aliases.get(target.value.id)
            key_lit = _literal_key(target.slice)
            if key_lit is not None and base_path is not None:
                # literal key: the value lands in that key's slot only —
                # the base wildcard and sibling keys stay untouched
                env[f"{base_path}[{key_lit}]"] = taint
                if attr is not None and self.fn.cls is not None:
                    # alias-mediated writes (pool = self.x.setdefault(...))
                    # may target a nested collection whose keys are not the
                    # attr's own key space: fall back to the wildcard there
                    self.store_content(
                        attr, taint.flat(), key=key_lit if direct_self else None
                    )
                return
            if attr is not None and self.fn.cls is not None:
                self.store_content(attr, taint.flat())
            if base_path is not None:
                env[base_path] = merge(env.get(base_path, EMPTY), taint)
            return

    def store_content(
        self, attr: str, flat: Taint, key: Optional[str] = None
    ) -> None:
        """Record that ``self.<attr>`` now contains ``flat``-tainted data
        (in the per-key slot when ``key`` is a literal, else wildcard)."""
        if self.fn.cls is None:
            return
        if "src" in flat.markers:
            stored = Taint(frozenset({"src"}), flat.cleared, flat.laundered)
            if key is not None:
                self.engine.store_attr_key(self.fn.cls, attr, key, stored)
            else:
                self.engine.store_attr(self.fn.cls, attr, stored)
        for marker in flat.markers:
            if marker.startswith("p"):
                self.attr_stores.add(
                    (self.fn.cls, attr, marker, flat.cleared, flat.laundered, key)
                )

    def _track_alias(self, target: ast.expr, value: ast.expr) -> None:
        """``pool = self._shares.setdefault(k, {})`` makes writes through
        ``pool`` visible as content of ``self._shares``."""
        if not isinstance(target, ast.Name):
            return
        expr = value
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("setdefault", "get")
        ):
            expr = expr.func.value
        if isinstance(expr, ast.Subscript):
            expr = expr.value
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            self.aliases[target.id] = expr.attr
        else:
            self.aliases.pop(target.id, None)

    # -- verdict-list flow (batch verification) -------------------------------

    def _track_verdict(self, target: ast.expr, value: ast.expr) -> None:
        """``verdicts = executor.rsa_verify_many(pairs)`` remembers that
        ``verdicts`` holds one verification verdict per submitted item."""
        if not isinstance(target, ast.Name):
            return
        name: Optional[str] = None
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
        if name is not None and name in VERDICT_CALLS:
            self.verdict_lists[target.id] = SANITIZERS[name]
        else:
            self.verdict_lists.pop(target.id, None)

    def _bind_verdict_zip(
        self, target: ast.expr, it: ast.expr, env: Dict[str, Taint]
    ) -> bool:
        """``for item, ok in zip(items, verdicts)``: bind ``item`` to the
        items' own taint (not the coarse merge of both zip arguments) and
        register ``ok`` as its per-item verification verdict so a
        subsequent ``if ok:`` / ``if not ok: continue`` guard clears the
        verifier's rules on ``item``."""
        if not (isinstance(target, ast.Tuple) and len(target.elts) == 2):
            return False
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "zip"
            and len(it.args) == 2
        ):
            return False
        names = [
            arg.id if isinstance(arg, ast.Name) else None for arg in it.args
        ]
        for v_pos in (0, 1):
            v_name = names[v_pos]
            if v_name is None or v_name not in self.verdict_lists:
                continue
            item_tgt = target.elts[1 - v_pos]
            ok_tgt = target.elts[v_pos]
            if not (
                isinstance(item_tgt, ast.Name) and isinstance(ok_tgt, ast.Name)
            ):
                return False
            self.bind_loop_target(
                item_tgt, self.eval(it.args[1 - v_pos], env), env
            )
            env[ok_tgt.id] = EMPTY
            self.verdict_guards[ok_tgt.id] = (
                item_tgt.id,
                self.verdict_lists[v_name],
            )
            return True
        return False

    def _verdict_guard_in_test(
        self, test: ast.expr
    ) -> Optional[Tuple[str, FrozenSet[str], bool]]:
        """``if ok:`` / ``if not ok:`` where ``ok`` is a registered verdict:
        return (item path, rules to clear, whether the *then* branch is the
        verified one)."""
        if isinstance(test, ast.Name) and test.id in self.verdict_guards:
            item, rules = self.verdict_guards[test.id]
            return item, rules, True
        if (
            isinstance(test, ast.UnaryOp)
            and isinstance(test.op, ast.Not)
            and isinstance(test.operand, ast.Name)
            and test.operand.id in self.verdict_guards
        ):
            item, rules = self.verdict_guards[test.operand.id]
            return item, rules, False
        return None

    # -- expressions ----------------------------------------------------------

    def path_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            base = self.path_of(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def paths_in(self, node: ast.expr) -> List[str]:
        """Dotted paths of every Name/Attribute chain inside ``node``
        (so a sink on ``[msg.share]`` records ``msg.share`` for T408)."""
        direct = self.path_of(node)
        if direct is not None:
            return [direct]
        out: List[str] = []
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                out.extend(self.paths_in(child))
        return out

    def _with_keyed(
        self, env: Dict[str, Taint], path: str, base: Taint
    ) -> Taint:
        """Whole-collection read: fold the env's per-key slots for ``path``
        back into the base taint (reading the full dict sees all values)."""
        prefix = path + "["
        for key, taint in env.items():
            if key.startswith(prefix):
                base = merge(base, taint)
        return base

    def eval(self, node: ast.expr, env: Dict[str, Taint]) -> Taint:
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Name):
            return self._with_keyed(env, node.id, env.get(node.id, EMPTY))
        if isinstance(node, ast.Attribute):
            path = self.path_of(node)
            if path is not None and path in env:
                return self._with_keyed(env, path, env[path])
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                out = self.engine.read_attr(self.fn.cls, node.attr)
                return self._with_keyed(env, f"self.{node.attr}", out)
            base = self.eval(node.value, env)
            return base.field_taint(node.attr)
        if isinstance(node, ast.Call):
            return self.eval_call(node, env)
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            if isinstance(node.op, ast.Mult):
                self.check_repetition(node, left, right)
            return merge(left, right)
        if isinstance(node, ast.BoolOp):
            out = EMPTY
            for value in node.values:
                out = merge(out, self.eval(value, env))
            return out
        if isinstance(node, ast.UnaryOp):
            inner = self.eval(node.operand, env)
            if isinstance(node.op, ast.Not):
                return EMPTY
            return inner
        if isinstance(node, ast.Compare):
            self.eval_compare(node, env)
            return EMPTY
        if isinstance(node, ast.Subscript):
            self.check_identity_index(node, env)
            self.eval(node.slice, env)
            key_lit = _literal_key(node.slice)
            base_path = self.path_of(node.value)
            if key_lit is not None and base_path is not None:
                # precise per-key read: this key's slot plus the base
                # wildcard, but NOT the other literal keys' slots
                out = env.get(f"{base_path}[{key_lit}]", EMPTY)
                if base_path in env:
                    return merge(out, env[base_path])
                if (
                    isinstance(node.value, ast.Attribute)
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "self"
                ):
                    return merge(
                        out,
                        self.engine.read_attr_key(
                            self.fn.cls, node.value.attr, key_lit
                        ),
                    )
                return merge(out, self.eval(node.value, env))
            return self.eval(node.value, env)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = EMPTY
            for elt in node.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                out = merge(out, self.eval(inner, env))
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                if key is not None:
                    out = merge(out, self.eval(key, env))
            for value in node.values:
                out = merge(out, self.eval(value, env))
            return out
        if isinstance(node, ast.IfExp):
            self.eval(node.test, env)
            return merge(self.eval(node.body, env), self.eval(node.orelse, env))
        if isinstance(node, (ast.Await, ast.Starred, ast.FormattedValue)):
            return self.eval(node.value, env)
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                out = merge(out, self.eval(value, env))
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            comp_env = dict(env)
            for gen in node.generators:
                iter_taint = self.eval(gen.iter, comp_env)
                self.bind_loop_target(gen.target, iter_taint, comp_env)
                for cond in gen.ifs:
                    self.eval(cond, comp_env)
            return self.eval(node.elt, comp_env)
        if isinstance(node, ast.DictComp):
            comp_env = dict(env)
            for gen in node.generators:
                iter_taint = self.eval(gen.iter, comp_env)
                self.bind_loop_target(gen.target, iter_taint, comp_env)
                for cond in gen.ifs:
                    self.eval(cond, comp_env)
            return merge(
                self.eval(node.key, comp_env), self.eval(node.value, comp_env)
            )
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.NamedExpr):
            taint = self.eval(node.value, env)
            self.assign(node.target, taint, env, ast.Expr(value=node))
            return taint
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self.eval(part, env)
            return EMPTY
        return EMPTY

    # -- guards (comparisons) -------------------------------------------------

    def eval_compare(self, node: ast.Compare, env: Dict[str, Taint]) -> None:
        operands = [node.left] + list(node.comparators)
        for operand in operands:
            self.eval(operand, env)
        is_membership = any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops)
        if is_membership:
            key = node.left
            key_path = self.path_of(key)
            if key_path is not None:
                self.clear_path(env, key_path, frozenset({"T404"}), node.lineno)
            for container in node.comparators:
                cpath = self.path_of(container)
                if cpath is not None:
                    self.guarded.add(cpath)
            return
        for operand in operands:
            path = self.path_of(operand)
            if path is None:
                # len(coll) bound check guards that collection
                if (
                    isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id == "len"
                    and operand.args
                ):
                    inner = self.path_of(operand.args[0])
                    if inner is not None:
                        self.guarded.add(inner)
                continue
            taint = self.lookup_path(env, path)
            others = [o for o in operands if o is not operand]
            if self._is_identity_path(operand) and others:
                self.clear_path(env, path, frozenset({"T406"}), node.lineno)
            if taint.is_tainted and any(self._is_bound_expr(o) for o in others):
                self.clear_path(
                    env, path, frozenset({"T403", "T404"}), node.lineno
                )

    def _is_identity_path(self, node: ast.expr) -> bool:
        return isinstance(node, ast.Attribute) and node.attr in IDENTITY_ATTRS

    def _is_bound_expr(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
            return True
        if isinstance(node, ast.BinOp):  # self.round + MAX_ROUND_AHEAD
            return self._is_bound_expr(node.left) or self._is_bound_expr(node.right)
        if isinstance(node, ast.Call):
            name = (
                node.func.id
                if isinstance(node.func, ast.Name)
                else getattr(node.func, "attr", "")
            )
            return name in ("len", "min", "max")
        path = self.path_of(node)
        if path is not None:
            upper = path.upper()
            return any(hint in upper for hint in BOUND_NAME_HINTS) or path.startswith(
                "self."
            )
        return False

    def lookup_path(self, env: Dict[str, Taint], path: str) -> Taint:
        """Taint of a dotted path: exact env entry, else parent fields."""
        if path in env:
            return env[path]
        if "." in path:
            base, _, attr = path.rpartition(".")
            if base == "self":
                return self.engine.read_attr(self.fn.cls, attr)
            return self.lookup_path(env, base).field_taint(attr)
        return EMPTY

    def clear_path(
        self,
        env: Dict[str, Taint],
        path: str,
        rules: FrozenSet[str],
        lineno: int,
        from_sanitizer: bool = False,
    ) -> None:
        # T408: an explicit sanitizer *call* arrived after the value
        # already hit a sink (compare-based guards are exempt: a late
        # dedupe/bounds comparison is not a misplaced verification).
        if from_sanitizer:
            for rule, sink_line in self.sunk.get(path, ()):
                if rule in rules and sink_line < lineno and self.report:
                    self.findings.append(
                        Finding(
                            "T408",
                            self.fn.path,
                            lineno,
                            0,
                            f"'{path}' is sanitized here but already "
                            f"reached a {rule} sink at line {sink_line}; "
                            "the check cannot protect the earlier use",
                        )
                    )
        env[path] = self.lookup_path(env, path).clear(rules)
        for prefix in (path + ".", path + "["):
            for key in list(env):
                if key.startswith(prefix):
                    env[key] = env[key].clear(rules)

    # -- calls ----------------------------------------------------------------

    def eval_call(self, node: ast.Call, env: Dict[str, Taint]) -> Taint:
        func = node.func
        callee_qname, call_name = self.index.resolve_call(node, self.fn)
        # evaluate the receiver chain so nested calls (sinks inside
        # x.setdefault(...).append(...)) are not skipped
        receiver = EMPTY
        if isinstance(func, ast.Attribute):
            receiver = self.eval(func.value, env)
        arg_taints: List[Taint] = [self.eval(a, env) for a in node.args]
        kw_taints: Dict[str, Taint] = {
            kw.arg: self.eval(kw.value, env)
            for kw in node.keywords
            if kw.arg is not None
        }

        # serialization of tainted data -> laundered bytes
        if call_name in SERIALIZERS and isinstance(func, ast.Attribute):
            base = receiver.flat()
            if base.is_tainted:
                return replace(base, laundered=True, fields=())
            return EMPTY

        if call_name == "len":
            out = EMPTY
            for t in arg_taints:
                out = merge(out, t)
            # len() measures data already held: its result is not an
            # attacker-*claimed* size, so allocation by it is not T403.
            return out.clear(frozenset({"T403", "T404"}))

        if call_name in TRUSTED_PRODUCERS:
            # locally-generated shares/signatures over any message are
            # trusted material, even when the message itself is remote
            return EMPTY

        # sinks ---------------------------------------------------------------
        if call_name in SINK_CALLS:
            rule = SINK_CALLS[call_name]
            skip_first = call_name in SINK_MESSAGE_FIRST and len(node.args) >= 2
            for pos, (arg, taint) in enumerate(zip(node.args, arg_taints)):
                if skip_first and pos == 0:
                    continue
                self.hit_sink(
                    rule,
                    taint.flat(),
                    node,
                    f"'{_expr_text(arg)}' reaches {call_name}() without "
                    "the required verification on this path",
                    self.paths_in(arg),
                )
            for name, taint in kw_taints.items():
                self.hit_sink(
                    rule,
                    taint.flat(),
                    node,
                    f"argument '{name}' reaches {call_name}() without "
                    "the required verification on this path",
                )
        if call_name in ALLOC_CALLS:
            rule = ALLOC_CALLS[call_name]
            for arg, taint in zip(node.args, arg_taints):
                self.hit_sink(
                    rule,
                    taint.flat(),
                    node,
                    f"allocation {call_name}({_expr_text(arg)}) sized by a "
                    "remote value without a bounds check",
                    self.paths_in(arg),
                )
        if (
            call_name in GROWTH_CALLS
            and isinstance(func, ast.Attribute)
            and node.args
        ):
            key_taint = arg_taints[0].flat()
            self.check_growth(func.value, node.args[0], key_taint, node)

        # collection mutation stores taint cross-function (content only:
        # for setdefault the key is checked by T404/T406, not stored)
        if (
            isinstance(func, ast.Attribute)
            and call_name in ("setdefault", "add", "append", "update", "extend")
            and self.fn.cls is not None
        ):
            attr: Optional[str] = None
            if (
                isinstance(func.value, ast.Attribute)
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "self"
            ):
                attr = func.value.attr
            elif isinstance(func.value, ast.Name):
                attr = self.aliases.get(func.value.id)
            if attr is not None:
                content = arg_taints[1:] if call_name == "setdefault" else arg_taints
                stored = EMPTY
                for t in content:
                    stored = merge(stored, t.flat())
                self.store_content(attr, stored)

        # dict access returns content, never the key
        if call_name in ("setdefault", "get") and isinstance(func, ast.Attribute):
            out = receiver.flat()
            for t in arg_taints[1:2]:  # default value
                out = merge(out, t.flat())
            return out

        # sanitizers ----------------------------------------------------------
        sanitized = call_name in SANITIZERS
        if sanitized:
            rules = SANITIZERS[call_name]
            cleared_args: List[Taint] = []
            for arg, taint in zip(node.args, arg_taints):
                # paths_in, not path_of: verify_shares(m, [msg.share])
                # must clear msg.share inside the list literal too
                for path in self.paths_in(arg):
                    self.clear_path(env, path, rules, node.lineno, from_sanitizer=True)
                for marker in taint.flat().markers:
                    if marker.startswith("p"):
                        self.sanitizes.add((marker, rules))
                cleared_args.append(taint.clear(rules))
            arg_taints = cleared_args
            kw_taints = {k: t.clear(rules) for k, t in kw_taints.items()}
            # verifying a method's receiver (msg.verify()) clears it too
            if isinstance(func, ast.Attribute):
                rpath = self.path_of(func.value)
                if rpath is not None:
                    self.clear_path(env, rpath, rules, node.lineno, from_sanitizer=True)
                for marker in receiver.flat().markers:
                    if marker.startswith("p"):
                        self.sanitizes.add((marker, rules))

        # sources -------------------------------------------------------------
        if call_name in SOURCE_CALLS:
            merged = EMPTY
            for t in list(arg_taints) + list(kw_taints.values()):
                merged = merge(merged, t.flat())
            return Taint(
                markers=frozenset({"src"}) | merged.markers,
                cleared=merged.cleared | frozenset({"T405"}),
                laundered=merged.laundered,
            )
        if sanitized:
            return EMPTY

        # dataclass constructor: field-sensitive message taint
        ctor = self.index.resolve_constructor(node, self.fn)
        if ctor is not None and ctor.fields:
            fields: List[Tuple[str, Taint]] = []
            for pos, taint in enumerate(arg_taints):
                if pos < len(ctor.fields) and taint.is_tainted:
                    fields.append((ctor.fields[pos], taint.flat()))
            for name, taint in kw_taints.items():
                if name in ctor.fields and taint.is_tainted:
                    fields.append((name, taint.flat()))
            if fields:
                return Taint(fields=tuple(sorted(fields)))
            return EMPTY

        # interprocedural: apply the callee's summary ------------------------
        if callee_qname is not None and callee_qname in self.engine.summaries:
            return self.apply_summary(
                node, callee_qname, arg_taints, kw_taints, receiver, env
            )

        # unknown call: propagate conservatively
        out = receiver.flat()
        for t in list(arg_taints) + list(kw_taints.values()):
            out = merge(out, t.flat())
        return out

    def _arg_for_marker(
        self, node: ast.Call, callee: FunctionInfo, offset: int, marker: str
    ) -> Optional[ast.expr]:
        """Call-site expression bound to the callee parameter ``marker``
        (``p<idx>``): the receiver for p0 of a method call, a positional
        argument, or a keyword matched by parameter name."""
        try:
            idx = int(marker[1:])
        except ValueError:
            return None
        pos = idx - offset
        if pos == -1 and isinstance(node.func, ast.Attribute):
            return node.func.value
        if 0 <= pos < len(node.args):
            return node.args[pos]
        if idx < len(callee.params):
            pname = callee.params[idx]
            for kw in node.keywords:
                if kw.arg == pname:
                    return kw.value
        return None

    def apply_summary(
        self,
        node: ast.Call,
        callee_qname: str,
        arg_taints: List[Taint],
        kw_taints: Dict[str, Taint],
        receiver: Taint = EMPTY,
        env: Optional[Dict[str, Taint]] = None,
    ) -> Taint:
        callee = self.index.functions[callee_qname]
        summary = self.engine.summaries[callee_qname]
        offset = 1 if callee.params and callee.params[0] in ("self", "cls") and isinstance(
            node.func, ast.Attribute
        ) else 0
        bindings: Dict[str, Taint] = {}
        if offset == 1 and receiver.is_tainted:
            bindings["p0"] = receiver.flat()
        for pos, taint in enumerate(arg_taints):
            idx = pos + offset
            if idx < len(callee.params):
                bindings[f"p{idx}"] = taint.flat()
        for name, taint in kw_taints.items():
            if name in callee.params:
                bindings[f"p{callee.params.index(name)}"] = taint.flat()

        for hit in summary.sink_hits:
            bound = bindings.get(hit.marker)
            if bound is None or hit.rule in bound.cleared:
                continue
            if "src" in bound.markers:
                if self.report:
                    rule = (
                        "T407"
                        if bound.laundered and hit.rule in LAUNDERABLE_RULES
                        else hit.rule
                    )
                    self.findings.append(
                        Finding(rule, hit.path, hit.line, hit.col, hit.message)
                    )
            for marker in bound.markers:
                if marker.startswith("p"):
                    self.sink_hits.add(replace(hit, marker=marker))

        # sanitizers applied inside the callee act at this call site too:
        # clearing the argument's path here is what trips T408 when the
        # value already reached a sink earlier in THIS function
        for marker, rules in summary.sanitizes:
            bound = bindings.get(marker)
            if bound is None:
                continue
            if env is not None:
                arg_expr = self._arg_for_marker(node, callee, offset, marker)
                if arg_expr is not None:
                    for path in self.paths_in(arg_expr):
                        self.clear_path(
                            env, path, rules, node.lineno, from_sanitizer=True
                        )
            for m in bound.markers:
                if m.startswith("p"):
                    self.sanitizes.add((m, rules))

        for cls_qname, attr, marker, cleared, laundered, key in summary.attr_stores:
            bound = bindings.get(marker)
            if bound is None:
                continue
            # sanitization performed inside the callee before the store
            # applies on top of whatever the caller had already cleared
            eff_cleared = bound.cleared | cleared
            eff_laundered = bound.laundered or laundered
            if "src" in bound.markers:
                stored = Taint(frozenset({"src"}), eff_cleared, eff_laundered)
                if key is not None:
                    self.engine.store_attr_key(cls_qname, attr, key, stored)
                else:
                    self.engine.store_attr(cls_qname, attr, stored)
            for m in bound.markers:
                if m.startswith("p"):
                    self.attr_stores.add(
                        (cls_qname, attr, m, eff_cleared, eff_laundered, key)
                    )

        markers: Set[str] = set()
        cleared = summary.returns.cleared
        laundered = summary.returns.laundered
        if "src" in summary.returns.markers:
            markers.add("src")
        for marker in summary.returns.markers:
            bound = bindings.get(marker)
            if bound is not None and bound.is_tainted:
                markers.update(bound.markers)
                laundered = laundered or bound.laundered
        if not markers:
            return EMPTY
        return Taint(frozenset(markers), cleared, laundered)

    # -- sink helpers ---------------------------------------------------------

    def hit_sink(
        self,
        rule: str,
        taint: Taint,
        node: ast.AST,
        message: str,
        paths: Sequence[str] = (),
    ) -> None:
        if not taint.markers or rule in taint.cleared:
            return
        line = getattr(node, "lineno", self.fn.lineno)
        col = getattr(node, "col_offset", 0)
        if "src" in taint.markers and self.report:
            effective = (
                "T407" if taint.laundered and rule in LAUNDERABLE_RULES else rule
            )
            if effective == "T407":
                message += " (value was laundered through a serialization round-trip)"
            self.findings.append(
                Finding(effective, self.fn.path, line, col, message)
            )
        for marker in taint.markers:
            if marker.startswith("p"):
                self.sink_hits.add(
                    SinkHit(marker, rule, self.fn.path, line, col, message)
                )
        for path in paths:
            self.sunk.setdefault(path, []).append((rule, line))

    def check_growth(
        self,
        container: ast.expr,
        key: ast.expr,
        key_taint: Taint,
        node: ast.AST,
    ) -> None:
        cpath = self.path_of(container)
        if cpath is not None and cpath in self.guarded:
            return
        # only replica state (self.<attr>) growth is in scope
        if not (cpath or "").startswith("self."):
            return
        if self._is_identity_path(key):
            self.hit_sink(
                "T406",
                key_taint,
                node,
                f"message-claimed identity '{_expr_text(key)}' indexes "
                f"{cpath} without a sender/bounds check",
                self.paths_in(key),
            )
            return
        self.hit_sink(
            "T404",
            key_taint,
            node,
            f"remote value '{_expr_text(key)}' keys unbounded growth of "
            f"{cpath} (no membership/bounds guard on this path)",
            self.paths_in(key),
        )

    def check_identity_index(self, node: ast.Subscript, env: Dict[str, Taint]) -> None:
        if not self._is_identity_path(node.slice):
            return
        base_path = self.path_of(node.value)
        if not (base_path or "").startswith("self."):
            return
        slice_path = self.path_of(node.slice)
        taint = (
            env.get(slice_path, EMPTY).flat() if slice_path else EMPTY
        )
        if not taint.is_tainted and isinstance(node.slice, ast.Attribute):
            taint = self.eval(node.slice, env).flat()
        self.hit_sink(
            "T406",
            taint,
            node,
            f"message-claimed identity '{_expr_text(node.slice)}' indexes "
            f"{base_path} without a sender/bounds check",
            [slice_path] if slice_path else (),
        )

    def check_repetition(self, node: ast.BinOp, left: Taint, right: Taint) -> None:
        def is_seq_literal(expr: ast.expr) -> bool:
            return isinstance(expr, (ast.List, ast.Tuple)) or (
                isinstance(expr, ast.Constant)
                and isinstance(expr.value, (str, bytes))
            )

        for seq, count_expr, count in (
            (node.left, node.right, right),
            (node.right, node.left, left),
        ):
            if is_seq_literal(seq):
                self.hit_sink(
                    "T403",
                    count.flat(),
                    node,
                    f"sequence repetition '{_expr_text(node)}' sized by a "
                    "remote value without a bounds check",
                    self.paths_in(count_expr),
                )


# -- public API ---------------------------------------------------------------


def analyze_files(
    files: Sequence[Tuple[Path, str, str]],
    config: Optional[LintConfig] = None,
    suppressions: Optional[Dict[str, List["Suppression"]]] = None,
) -> List[Finding]:
    """Run the taint analysis over pre-loaded (path, module, source) files.

    Inline ``# repro-lint: disable=T4xx`` comments are honored; pass
    ``suppressions`` (path -> parsed suppressions, keyed like
    ``Finding.path``) to share usage tracking with the caller (the CLI
    does, so stale-suppression reporting sees taint-rule hits).
    """
    from repro.lint.framework import parse_suppression_comments

    config = config or LintConfig()
    index = ProgramIndex.build(files)
    engine = TaintEngine(index, tuple(config.taint_modules))
    findings = engine.run()
    if suppressions is None:
        suppressions = {
            path.as_posix(): parse_suppression_comments(source)
            for path, _module, source in files
        }
    kept: List[Finding] = []
    for f in findings:
        shields = [
            s for s in suppressions.get(f.path, []) if s.shields(f.rule, f.line)
        ]
        if shields:
            for s in shields:
                s.used.add(f.rule)
            continue
        kept.append(f)
    return kept


def analyze(
    paths: Sequence[Path],
    root: Path,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Run the taint analysis over every Python file under ``paths``."""
    return analyze_files(module_files(paths, root), config=config)
