"""``repro.taint`` — interprocedural Byzantine-taint analysis (T401-T408).

Tracks attacker-controlled message fields from transport ingress
(``on_message`` handlers, wire decoders) through the call graph to
protocol sinks (signature assembly, epoch control flow, allocation,
handler collections, zone mutation), subtracting sanitizers
(share/signature verification, certificate validation, bounds checks).
See DESIGN.md §5e.
"""

from repro.taint.engine import Taint, TaintEngine, analyze, analyze_files
from repro.taint.indexer import ProgramIndex, build_index, module_files
from repro.taint.sarif import render_sarif, to_sarif
from repro.taint.specs import TAINT_RULES

__all__ = [
    "Taint",
    "TaintEngine",
    "TAINT_RULES",
    "ProgramIndex",
    "analyze",
    "analyze_files",
    "build_index",
    "module_files",
    "render_sarif",
    "to_sarif",
]
