"""SARIF 2.1.0 emitter for lint/taint findings.

Emits the minimal static-analysis interchange subset consumed by code
hosts and SARIF viewers: one run, a rule catalog under
``tool.driver.rules``, and one result per finding with a physical
location.  Output is deterministic (sorted findings, sorted keys) so the
artifact diffs cleanly between CI runs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.framework import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Rule families mapped to SARIF levels.
_LEVELS = {
    "T": "error",  # taint: attacker-controlled data at a protocol sink
    "C": "error",  # crypto hygiene
    "D": "warning",  # determinism
    "A": "warning",  # async safety
    "S": "note",  # stale suppressions
    "E": "error",  # parse errors
    "Q": "error",  # quorum arithmetic: safety-breaking thresholds
    "Y": "error",  # yield-point atomicity: async handler races
    "X": "error",  # systematic exploration: schedule-witnessed violations
}


def _level_for(rule: str) -> str:
    return _LEVELS.get(rule[:1], "warning")


def to_sarif(
    findings: Sequence[Finding],
    rule_catalog: Optional[Dict[str, Tuple[str, str]]] = None,
    tool_name: str = "repro-lint",
    tool_version: str = "1.0",
) -> Dict[str, object]:
    """Build the SARIF log dict for ``findings``.

    ``rule_catalog`` maps rule id -> (short summary, full description);
    rules seen in findings but absent from the catalog still get stub
    descriptors so the log is self-contained.
    """
    catalog = dict(rule_catalog or {})
    seen_rules = sorted({f.rule for f in findings} | set(catalog))
    rules: List[Dict[str, object]] = []
    rule_index: Dict[str, int] = {}
    for i, rule_id in enumerate(seen_rules):
        summary, description = catalog.get(rule_id, (rule_id, rule_id))
        rule_index[rule_id] = i
        rules.append(
            {
                "id": rule_id,
                "shortDescription": {"text": summary},
                "fullDescription": {"text": description},
                "defaultConfiguration": {"level": _level_for(rule_id)},
            }
        )
    results: List[Dict[str, object]] = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        results.append(
            {
                "ruleId": f.rule,
                "ruleIndex": rule_index[f.rule],
                "level": _level_for(f.rule),
                "message": {"text": f.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": f.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": f.line,
                                "startColumn": f.col + 1,
                            },
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    rule_catalog: Optional[Dict[str, Tuple[str, str]]] = None,
) -> str:
    return json.dumps(
        to_sarif(findings, rule_catalog), indent=2, sort_keys=True
    )
