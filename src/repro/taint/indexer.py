"""Whole-program index for the interprocedural taint engine.

Parses every module once and builds:

* a symbol table of functions/methods (:class:`FunctionInfo`) and classes
  (:class:`ClassInfo`, with base classes, dataclass fields, and attribute
  type annotations such as ``self.executor: CryptoExecutor``);
* handler registrations (``set_handler(self.on_message)``, lambdas,
  ``functools.partial`` wrappers) so transport ingress is recognized even
  when the callback is not named like a handler;
* a call-target resolver covering the repo's dispatch idioms: direct
  calls, ``self.method()`` through the MRO, ``self.attr.method()`` through
  annotated protocol attributes, and a unique-name fallback for everything
  else.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.framework import ImportMap, module_name_for_path

from repro.taint.specs import (
    HANDLER_EXACT_NAMES,
    HANDLER_NAME_PREFIXES,
)

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda]

#: Call names that register a callback as a transport/message handler.
HANDLER_REGISTRARS = frozenset(
    {"set_handler", "add_handler", "register_handler", "subscribe", "on_receive"}
)


def is_handler_name(name: str) -> bool:
    return name in HANDLER_EXACT_NAMES or any(
        name.startswith(prefix) for prefix in HANDLER_NAME_PREFIXES
    )


@dataclass
class FunctionInfo:
    """One function, method, or registered lambda."""

    qname: str  # "module:Class.method" / "module:func" / "module:f.<lambda:LN>"
    module: str
    path: str
    name: str
    node: FunctionNode
    params: Tuple[str, ...]
    cls: Optional[str] = None  # owning class qname ("module:Class")
    is_handler: bool = False
    lineno: int = 0


@dataclass
class ClassInfo:
    qname: str  # "module:Class"
    module: str
    name: str
    bases: Tuple[str, ...] = ()  # resolved dotted names (best effort)
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fn qname
    attr_types: Dict[str, str] = field(default_factory=dict)  # attr -> dotted type
    is_dataclass: bool = False
    fields: Tuple[str, ...] = ()  # dataclass field names, declaration order


@dataclass
class ModuleInfo:
    module: str
    path: str
    tree: ast.Module
    imports: ImportMap


def _param_names(node: FunctionNode) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    return tuple(names)


def _annotation_name(node: Optional[ast.expr]) -> Optional[str]:
    """Best-effort bare type name from an annotation expression.

    Strips ``Optional[...]``/string quoting; returns the trailing name of
    a dotted path so it can be matched against indexed classes.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):  # Optional[T] / List[T] -> T
        inner = node.slice
        if isinstance(inner, ast.Tuple) and inner.elts:
            inner = inner.elts[0]
        return _annotation_name(inner)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):  # T | None
        left = _annotation_name(node.left)
        if left and left != "None":
            return left
        return _annotation_name(node.right)
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ProgramIndex:
    """Symbol table + call graph over a set of modules."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: bare function/method name -> fn qnames (for unique-name fallback)
        self.by_name: Dict[str, List[str]] = {}
        #: bare class name -> class qnames
        self.class_by_name: Dict[str, List[str]] = {}

    # -- construction ---------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[Tuple[Path, str, str]]) -> "ProgramIndex":
        """Index ``(path, module, source)`` triples; files that fail to
        parse are skipped (the lint pass reports E000 for them)."""
        index = cls()
        for path, module, source in files:
            try:
                tree = ast.parse(source)
            except SyntaxError:
                continue
            index._index_module(path, module, tree)
        index._resolve_registrations()
        return index

    def _index_module(self, path: Path, module: str, tree: ast.Module) -> None:
        key = module or path.as_posix()
        info = ModuleInfo(module=key, path=path.as_posix(), tree=tree, imports=ImportMap(tree, module))
        self.modules[key] = info
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, cls=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(info, node)

    def _add_function(
        self, mod: ModuleInfo, node: FunctionNode, cls: Optional[ClassInfo]
    ) -> FunctionInfo:
        name = getattr(node, "name", f"<lambda:{node.lineno}>")
        qname = (
            f"{mod.module}:{cls.name}.{name}" if cls else f"{mod.module}:{name}"
        )
        fn = FunctionInfo(
            qname=qname,
            module=mod.module,
            path=mod.path,
            name=name,
            node=node,
            params=_param_names(node),
            cls=cls.qname if cls else None,
            is_handler=is_handler_name(name),
            lineno=node.lineno,
        )
        self.functions[qname] = fn
        self.by_name.setdefault(name, []).append(qname)
        if cls is not None:
            cls.methods[name] = qname
        return fn

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qname = f"{mod.module}:{node.name}"
        is_dc = any(
            (mod.imports.resolve(dec.func if isinstance(dec, ast.Call) else dec) or "")
            .endswith("dataclass")
            for dec in node.decorator_list
        )
        bases = tuple(
            resolved
            for base in node.bases
            if (resolved := mod.imports.resolve(base)) is not None
        )
        cls = ClassInfo(
            qname=qname, module=mod.module, name=node.name, bases=bases, is_dataclass=is_dc
        )
        self.classes[qname] = cls
        self.class_by_name.setdefault(node.name, []).append(qname)
        fields: List[str] = []
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, stmt, cls)
                self._scan_self_attr_types(mod, cls, stmt)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                fields.append(stmt.target.id)
                type_name = _annotation_name(stmt.annotation)
                if type_name:
                    cls.attr_types[stmt.target.id] = type_name
        if is_dc:
            cls.fields = tuple(fields)

    def _scan_self_attr_types(
        self, mod: ModuleInfo, cls: ClassInfo, fn: ast.AST
    ) -> None:
        """Record ``self.x: T = ...`` and ``self.x = ClassName(...)``."""
        for node in ast.walk(fn):
            target: Optional[ast.expr] = None
            type_name: Optional[str] = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
                type_name = _annotation_name(node.annotation)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(node.value, ast.Call):
                    callee = node.value.func
                    resolved = mod.imports.resolve(callee)
                    if resolved:
                        type_name = resolved.rsplit(".", 1)[-1]
            if (
                target is not None
                and type_name
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                cls.attr_types.setdefault(target.attr, type_name)

    def _resolve_registrations(self) -> None:
        """Mark handler-registered callbacks (incl. lambdas/partials)."""
        for mod in list(self.modules.values()):
            for node in ast.walk(mod.tree):
                if not isinstance(node, ast.Call):
                    continue
                callee = node.func
                call_name = (
                    callee.attr if isinstance(callee, ast.Attribute) else getattr(callee, "id", "")
                )
                if call_name not in HANDLER_REGISTRARS:
                    continue
                for arg in node.args:
                    self._mark_handler_arg(mod, arg)

    def _mark_handler_arg(self, mod: ModuleInfo, arg: ast.expr) -> None:
        # functools.partial(self._on_x, ...) -> unwrap to the real target
        if isinstance(arg, ast.Call):
            resolved = mod.imports.resolve(arg.func)
            if resolved and resolved.rsplit(".", 1)[-1] == "partial" and arg.args:
                self._mark_handler_arg(mod, arg.args[0])
            return
        if isinstance(arg, ast.Lambda):
            fn = self._add_function(mod, arg, cls=None)
            fn.is_handler = True
            return
        name: Optional[str] = None
        if isinstance(arg, ast.Attribute):  # self.on_message / node.handler
            name = arg.attr
        elif isinstance(arg, ast.Name):
            name = arg.id
        if not name:
            return
        for qname in self.by_name.get(name, ()):
            self.functions[qname].is_handler = True

    # -- lookups --------------------------------------------------------------

    def mro(self, class_qname: str) -> List[ClassInfo]:
        """Breadth-first base-class chain (best effort, cycles guarded)."""
        out: List[ClassInfo] = []
        seen = set()
        queue = [class_qname]
        while queue:
            qname = queue.pop(0)
            if qname in seen:
                continue
            seen.add(qname)
            cls = self.classes.get(qname)
            if cls is None:
                continue
            out.append(cls)
            for base in cls.bases:
                bare = base.rsplit(".", 1)[-1]
                candidates = self.class_by_name.get(bare, [])
                if len(candidates) == 1:
                    queue.append(candidates[0])
                else:  # prefer same-module definition
                    queue.extend(c for c in candidates if c.startswith(cls.module + ":"))
        return out

    def resolve_method(self, class_qname: str, method: str) -> Optional[str]:
        for cls in self.mro(class_qname):
            if method in cls.methods:
                return cls.methods[method]
        return None

    def resolve_class(self, module: str, dotted: Optional[str]) -> Optional[str]:
        """Class qname for a resolved dotted name (``repro.x.Cls`` or bare)."""
        if not dotted:
            return None
        if "." in dotted:
            mod_part, _, cls_part = dotted.rpartition(".")
            qname = f"{mod_part}:{cls_part}"
            if qname in self.classes:
                return qname
            dotted = cls_part
        local = f"{module}:{dotted}"
        if local in self.classes:
            return local
        candidates = self.class_by_name.get(dotted, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_call(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Tuple[Optional[str], str]:
        """(callee function qname or None, trailing call name)."""
        mod = self.modules.get(caller.module) or self.modules.get(caller.path)
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if mod is not None:
                dotted = mod.imports.resolve(func)
                if dotted:
                    mod_part, _, fn_part = dotted.rpartition(".")
                    qname = f"{mod_part}:{fn_part}" if mod_part else ""
                    if qname in self.functions:
                        return qname, name
                    # imported class constructor?
                    cls_qname = self.resolve_class(caller.module, dotted)
                    if cls_qname is not None:
                        return None, name  # constructors handled by caller
            local = f"{caller.module}:{name}"
            if local in self.functions:
                return local, name
            candidates = self.by_name.get(name, [])
            if len(candidates) == 1:
                return candidates[0], name
            return None, name
        if isinstance(func, ast.Attribute):
            name = func.attr
            base = func.value
            # self.method()
            if isinstance(base, ast.Name) and base.id == "self" and caller.cls:
                target = self.resolve_method(caller.cls, name)
                if target is not None:
                    return target, name
            # self.attr.method() through an annotated protocol attribute
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and caller.cls
            ):
                for cls in self.mro(caller.cls):
                    attr_type = cls.attr_types.get(base.attr)
                    if attr_type:
                        cls_qname = self.resolve_class(caller.module, attr_type)
                        if cls_qname:
                            target = self.resolve_method(cls_qname, name)
                            if target is not None:
                                return target, name
                        break
            # Module-level function through imports: module.func()
            if mod is not None:
                dotted = mod.imports.resolve(func)
                if dotted:
                    mod_part, _, fn_part = dotted.rpartition(".")
                    qname = f"{mod_part}:{fn_part}" if mod_part else ""
                    if qname in self.functions:
                        return qname, name
            # unique-name fallback
            candidates = self.by_name.get(name, [])
            if len(candidates) == 1:
                return candidates[0], name
            return None, name
        return None, ""

    def call_closure(self, roots: Iterable[str]) -> Set[str]:
        """Transitive call-graph closure of ``roots`` (function qnames).

        BFS through :meth:`resolve_call` over every call site of every
        reached function — shared by the race checker's handler
        reachability and the explorer's commutativity footprints.
        """
        seen: Set[str] = {q for q in roots if q in self.functions}
        queue = list(seen)
        while queue:
            fn = self.functions[queue.pop()]
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    qname, _name = self.resolve_call(node, fn)
                    if qname and qname in self.functions and qname not in seen:
                        seen.add(qname)
                        queue.append(qname)
        return seen

    def resolve_constructor(
        self, call: ast.Call, caller: FunctionInfo
    ) -> Optional[ClassInfo]:
        """ClassInfo when the call is a (dataclass) constructor."""
        mod = self.modules.get(caller.module) or self.modules.get(caller.path)
        dotted = mod.imports.resolve(call.func) if mod is not None else None
        if dotted is None and isinstance(call.func, ast.Name):
            dotted = call.func.id
        cls_qname = self.resolve_class(caller.module, dotted)
        if cls_qname is None:
            return None
        return self.classes.get(cls_qname)


def build_index(files: Sequence[Tuple[Path, str, str]]) -> ProgramIndex:
    return ProgramIndex.build(files)


def module_files(paths: Sequence[Path], root: Path) -> List[Tuple[Path, str, str]]:
    """Expand paths into (path, module, source) triples, repo-relative."""
    from repro.lint.framework import iter_python_files

    out: List[Tuple[Path, str, str]] = []
    for file_path in iter_python_files(paths):
        try:
            rel = file_path.resolve().relative_to(root.resolve())
        except ValueError:
            rel = file_path
        module = module_name_for_path(rel)
        source = file_path.read_text(encoding="utf-8")
        out.append((rel, module, source))
    return out
