"""Declarative source / sink / sanitizer specifications for ``repro.taint``.

The taint engine (DESIGN.md §5e) is driven entirely by the tables in this
module so the protocol-security contract stays reviewable in one place:

* **Sources** mark values as attacker-controlled: parameters of message
  handlers (anything delivered by the transport in ``net/local.py`` /
  ``sim/network.py`` except the authenticated ``sender`` id), and the
  outputs of wire decoders (``from_wire`` / ``from_bytes`` / ``decode_*``).
* **Sinks** are the protocol operations that must never consume a tainted
  value directly: signature assembly, epoch/sequence control flow, memory
  allocation sized by remote input, unbounded collection growth, zone
  mutation.
* **Sanitizers** clear specific rules from a value: share/proof
  verification, RSA signature verification, certificate validation,
  bounds checks, strict decoders.

Each sink is owned by one T4xx rule; each sanitizer names the rules it
clears.  The engine consults these tables both intraprocedurally and when
applying interprocedural function summaries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

# -- rule catalog -------------------------------------------------------------

#: rule id -> (summary, long description used in SARIF / --list-rules)
TAINT_RULES: Dict[str, Tuple[str, str]] = {
    "T401": (
        "unsanitized share reaches signature assembly",
        "A signature share that crossed the transport boundary flows into "
        "assemble()/Lagrange interpolation without verify_shares/"
        "share-validity checking on that path (Cachin-Samar §3.5: shares "
        "are verified on demand, but a path that never verifies lets a "
        "Byzantine replica corrupt the threshold signature).",
    ),
    "T402": (
        "unverified certificate or message drives epoch/sequence change",
        "A remote value is assigned to epoch/next_deliver control state "
        "without passing certificate/new-epoch validation; a forged "
        "NEW_EPOCH or EPOCH_FINAL could desynchronize honest replicas "
        "(G1 violation).",
    ),
    "T403": (
        "tainted length drives allocation",
        "A remote integer sizes an allocation (range/bytearray/sequence "
        "repetition) without a bounds check; classic amplification / "
        "memory-exhaustion vector (KeyTrap-class).",
    ),
    "T404": (
        "tainted key grows an unbounded handler collection",
        "A remote value is used as a dict/set key on replica state inside "
        "a handler without a membership/bounds guard, letting an attacker "
        "grow state without limit (KeyTrap-class).",
    ),
    "T405": (
        "unverified wire bytes reach zone mutation",
        "Raw transport bytes flow to zone mutation (add_rdata/delete/"
        "attach_signature) without passing a strict decoder or TSIG "
        "verification; zone state is the paper's G2 safety target.",
    ),
    "T406": (
        "sender-unchecked dispatch on a message-claimed identity",
        "A replica id claimed inside a message body (signer/index/sender "
        "field) indexes replica state without being checked against the "
        "transport-authenticated sender or bounds; enables share-slot "
        "spoofing and equivocation laundering.",
    ),
    "T407": (
        "taint laundered through a serialization round-trip",
        "Tainted data is re-encoded and re-decoded (to_bytes->from_bytes) "
        "and then treated as trusted at a sink; re-parsing does not "
        "authenticate remote input.",
    ),
    "T408": (
        "sanitizer runs after the sink it guards",
        "A value is verified only after it already reached a protocol "
        "sink in the same function; the check cannot protect the earlier "
        "use.",
    ),
}

#: Rules whose sinks a laundered (re-serialized) value still triggers, but
#: reported as T407 to name the root cause.
LAUNDERABLE_RULES: FrozenSet[str] = frozenset({"T401", "T402", "T405"})

# -- sources ------------------------------------------------------------------

#: Function-name patterns whose parameters are transport ingress.  The
#: authenticated peer id parameter (``sender``/``src``/``peer``) is NOT
#: tainted: the point-to-point links authenticate it (paper §2.2).
HANDLER_NAME_PREFIXES: Tuple[str, ...] = ("_on_", "on_", "handle_")
HANDLER_EXACT_NAMES: FrozenSet[str] = frozenset(
    {"on_message", "deliver", "receive"}
)
UNTAINTED_HANDLER_PARAMS: FrozenSet[str] = frozenset(
    {"self", "cls", "sender", "src", "peer", "replica_id", "rid"}
)

#: Call targets (matched on the trailing attribute name) whose *return
#: value* is attacker-controlled: wire decoders applied to raw bytes.
#: Strict, total decoders also appear in SANITIZERS below (they clear
#: T405: the decode itself is the validation for structure, not for
#: authenticity), so decode output stays tainted for T401/T402/T404.
SOURCE_CALLS: FrozenSet[str] = frozenset(
    {
        "from_wire",
        "from_bytes",
        "decode_batch",
        "decode_request",
        "parse_message",
    }
)

# -- sinks --------------------------------------------------------------------

#: Trailing call-name -> rule: tainted argument triggers the rule.
SINK_CALLS: Dict[str, str] = {
    # T401: threshold-signature assembly / interpolation
    "assemble": "T401",
    "assemble_signature": "T401",
    "combine_shares": "T401",
    "lagrange_interpolate": "T401",
    "interpolate": "T401",
    # T405: zone mutation and SIG construction from raw input
    "add_rdata": "T405",
    "delete_rdata": "T405",
    "delete_name": "T405",
    "delete_rrset": "T405",
    "attach_signature": "T405",
    "apply_update": "T405",
    "make_sig": "T405",
}

#: Trailing call-name -> rule for allocation sized by a tainted argument.
#: ``bytes(x)`` is deliberately absent: it is overwhelmingly a *conversion*
#: of existing data (bytes(bytearray), bytes(generator)), not a sized
#: allocation; bytearray/range/sequence-repetition cover the real pattern.
ALLOC_CALLS: Dict[str, str] = {
    "range": "T403",
    "bytearray": "T403",
}

#: T401 sinks whose first argument is the *message* being signed, not the
#: share set: only arguments after it are untrusted-share positions.
SINK_MESSAGE_FIRST: FrozenSet[str] = frozenset(
    {"assemble", "assemble_signature", "combine_shares"}
)

#: Calls producing locally-generated trusted material (shares/signatures
#: from our own key), regardless of the message they cover: their return
#: value is untainted even when the signed message is remote.
TRUSTED_PRODUCERS: FrozenSet[str] = frozenset(
    {"generate_share", "generate_share_with_proof", "sign", "rsa_sign"}
)

#: Attribute names whose assignment from a tainted value is epoch/sequence
#: control flow (kept narrow to avoid flagging ordinary bookkeeping).
CONTROL_STATE_ATTRS: FrozenSet[str] = frozenset(
    {"epoch", "next_deliver", "next_seq", "round"}
)

#: Message attribute names that claim a replica identity; using them to
#: index state without a sender check is T406.
IDENTITY_ATTRS: FrozenSet[str] = frozenset(
    {"signer", "sender", "complainer", "index", "replica", "source"}
)

#: Collection-growth method names (T404 when called on ``self.<attr>`` with
#: a tainted key inside a handler without a guard).  ``append`` is absent
#: on purpose: list growth is bounded by message count, which C304 already
#: polices; the taint rule targets attacker-chosen *keys*.
GROWTH_CALLS: FrozenSet[str] = frozenset({"setdefault", "add"})

# -- sanitizers ---------------------------------------------------------------

#: Trailing call-name -> rules cleared from the arguments (and, for the
#: boolean-guard form ``if not check(x): return``, from ``x`` afterwards).
SANITIZERS: Dict[str, FrozenSet[str]] = {
    # share verification (Shoup proofs / protocol prevalidation)
    "verify_shares": frozenset({"T401", "T407"}),
    "verify_share": frozenset({"T401", "T407"}),
    "share_is_valid": frozenset({"T401", "T407"}),
    "_share_valid": frozenset({"T401", "T407"}),
    "prevalidate": frozenset({"T401", "T407"}),
    "preload_verdicts": frozenset({"T401", "T407"}),
    "_store_share": frozenset({"T401", "T406"}),
    # RSA / threshold signature verification
    "verify_signature": frozenset({"T401", "T402", "T405", "T407"}),
    "signature_is_valid": frozenset({"T401", "T402", "T405", "T407"}),
    "rsa_verify": frozenset({"T401", "T402", "T405", "T407"}),
    "rsa_verify_many": frozenset({"T401", "T402", "T405", "T407"}),
    "verify_many": frozenset({"T401", "T402", "T405", "T407"}),
    "verify": frozenset({"T401", "T402", "T405", "T407"}),
    "is_valid": frozenset({"T401", "T402", "T405", "T407"}),
    "_verify_prepare": frozenset({"T401", "T402", "T406", "T407"}),
    # certificate / epoch-change validation
    "_validate_certificate": frozenset({"T402", "T407"}),
    "_validate_new_epoch": frozenset({"T402", "T407"}),
    "validate_certificate": frozenset({"T402", "T407"}),
    # TSIG / DNS message authentication
    "verify_message": frozenset({"T402", "T405", "T407"}),
    "verify_tsig": frozenset({"T402", "T405", "T407"}),
    # verified-subset assembly (OptTE verifies candidates internally)
    "assemble_candidates": frozenset({"T401", "T407"}),
    # ABC delivery-window / future-epoch bounds checks
    "_seq_in_window": frozenset({"T403", "T404"}),
    # per-(epoch, seq) digest admission cap (abc.py digest stuffing)
    "_admit_slot_digest": frozenset({"T404"}),
    # strict, total wire decoders: structural validation only
    "from_wire": frozenset({"T405"}),
    "from_bytes": frozenset({"T405"}),
    "decode_batch": frozenset({"T405"}),
    "decode_request": frozenset({"T405"}),
}

#: Batch verifiers whose *return value* is a per-item verdict list.  The
#: idiom ``verdicts = rsa_verify_many(pairs)`` followed by
#: ``for item, ok in zip(items, verdicts): if ok: ...`` verifies each
#: item individually; the engine threads the verdict flow so the guarded
#: branch counts as sanitized for the paired item (clearing the same
#: rules the sanitizer clears) instead of coarsely tainting — and without
#: a spurious T408, since a verdict guard is a comparison, not a late
#: sanitizer call.
VERDICT_CALLS: FrozenSet[str] = frozenset(
    {"rsa_verify_many", "verify_many", "verify_shares"}
)

#: Substrings in a compared-against name that make an int comparison a
#: bounds check (clears T403/T404), mirroring the C304 heuristic.
BOUND_NAME_HINTS: Tuple[str, ...] = (
    "MAX",
    "LIMIT",
    "BOUND",
    "CAP",
    "WINDOW",
    "REMAINING",
)

#: Default module scope for whole-repo analysis: the protocol surface.
#: Tooling (cli/lint/chaos) is excluded; "!"-prefixed patterns exclude
#: modules and take precedence (the fault injector IS the attacker model,
#: so taint rules about defending against remote input do not apply to
#: it).  Explicitly-passed non-package paths are always analyzed.
DEFAULT_TAINT_MODULES: Tuple[str, ...] = (
    "repro.broadcast.*",
    "repro.crypto.*",
    "repro.core.*",
    "repro.net.*",
    "repro.sim.*",
    "repro.dns.*",
    "!repro.core.faults",
)
