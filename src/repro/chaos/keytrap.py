"""KeyTrap adversarial zones: validation-budget stress for the resolver.

"The Harder You Try, The Harder You Fail" (PAPERS.md) showed that a
DNSSEC validator doing the RFC-mandated try-every-pair dance can be
driven into quadratic signature-verification work by a single crafted
response: many garbage SIGs over one RRset (SigJam) multiplied by many
keys crafted to share one key tag (KeySigTrap).  This module builds such
zones deterministically from a seed and drives the caching resolver at
them, asserting that its :class:`~repro.dns.resolver.ValidationBudget`
caps hold — the response is refused with SERVFAIL after a bounded number
of RSA verifies, benign queries still validate, and a replicated
deployment alongside keeps answering.

Key-tag collisions are cheap by construction: the RFC 2535 tag is a
16-bit checksum over the rdata, so tweaking a two-byte trailer of a
junk RSA blob finds any target tag in at most 65536 tries.  The forged
blobs are not valid RSA keys; :meth:`RsaPublicKey.verify` rejects them
(signature out of range) without doing modular exponentiation, exactly
like a real validator burning a signature check on a wrong candidate.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.name import Name
from repro.dns.rdata import KEY, SIG
from repro.dns.resolver import (
    CachingResolver,
    ValidationBudget,
    build_in_memory_tree,
)
from repro.dns.rrset import RRset
from repro.dns.zone import Zone
from repro.dns.zonefile import parse_zone_text
from repro.crypto.rsa import RsaKeyPair, generate_rsa_keypair

#: The adversarial zone template; jam/trap carry the attack RRsets.
ZONE_TEXT = """
$ORIGIN keytrap.example.
$TTL 3600
@    IN SOA ns1.keytrap.example. admin.keytrap.example. 1 7200 900 604800 300
     IN NS ns1
ns1  IN A 192.0.2.1
www  IN A 192.0.2.80
jam  IN A 192.0.2.81
trap IN A 192.0.2.82
"""

#: Forged signatures per attacked RRset and colliding keys in the trust
#: set.  24 x 25 candidate pairings ≈ 600 verifies if uncapped — two
#: orders past the default budget.
FORGED_SIGS = 24
COLLIDING_KEYS = 24

_BASE_KEYPAIR: Optional[RsaKeyPair] = None


def _base_keypair() -> RsaKeyPair:
    """One real 512-bit keypair shared across seeds (keygen is slow)."""
    global _BASE_KEYPAIR
    if _BASE_KEYPAIR is None:
        _BASE_KEYPAIR = generate_rsa_keypair(512)
    return _BASE_KEYPAIR


def forge_key_with_tag(target_tag: int, rng: random.Random) -> KEY:
    """A junk KEY record whose RFC 2535 key tag equals ``target_tag``.

    The tag is a 16-bit ones'-complement-style checksum, so sweeping a
    two-byte trailer is guaranteed to land within 65536 attempts; the
    checksum over the fixed prefix is computed once and the trailer's
    contribution added arithmetically, so the sweep is cheap.
    """
    base = bytes([1, 3]) + rng.randbytes(62)  # exponent-length 1, exp 3
    prefix = (
        struct.pack(">HBB", KEY.ZONE_KEY_FLAGS, 3, c.ALG_RSASHA1) + base
    )
    acc0 = 0
    for i, byte in enumerate(prefix):
        acc0 += byte << 8 if i % 2 == 0 else byte
    hi_shift, lo_shift = (8, 0) if len(prefix) % 2 == 0 else (0, 8)
    for trailer in range(0x10000):
        hi, lo = trailer >> 8, trailer & 0xFF
        acc = acc0 + (hi << hi_shift) + (lo << lo_shift)
        acc += (acc >> 16) & 0xFFFF
        if acc & 0xFFFF == target_tag:
            key = KEY(
                KEY.ZONE_KEY_FLAGS, 3, c.ALG_RSASHA1, base + bytes((hi, lo))
            )
            assert key.key_tag() == target_tag
            return key
    raise AssertionError("unreachable: 16-bit checksum sweep must hit the tag")


def _forged_sigs(template: SIG, count: int, rng: random.Random) -> List[SIG]:
    """Garbage signatures that pass every pre-verify sieve the resolver
    applies (type covered, algorithm, key tag) and fail only inside the
    costed RSA check."""
    return [
        SIG(
            template.type_covered,
            template.algorithm,
            template.labels,
            template.original_ttl,
            template.expiration,
            template.inception,
            template.key_tag,
            template.signer,
            rng.randbytes(len(template.signature)),
        )
        for _ in range(count)
    ]


@dataclass
class KeyTrapZone:
    """A signed zone with SigJam/KeySigTrap payloads planted."""

    zone: Zone
    real_key: KEY
    #: Trust set for the origin: the real key plus colliding junk keys.
    trusted_keys: Tuple[KEY, ...]
    jam_name: Name
    trap_name: Name
    benign_name: Name


def build_adversarial_zone(seed: int) -> KeyTrapZone:
    """A correctly signed zone with two attack names planted.

    * ``jam`` — its A RRset's real SIG is buried behind ``FORGED_SIGS``
      garbage signatures with the real key's tag (SigJam: the validator
      must burn one RSA check per forgery before reaching the truth).
    * ``trap`` — same forged SIGs, but meant to be validated against a
      trust set of ``COLLIDING_KEYS`` junk keys sharing the real tag
      (KeySigTrap: sigs × keys pairings explode combinatorially).
    """
    rng = random.Random(seed)
    zone = parse_zone_text(ZONE_TEXT)
    keypair = _base_keypair()
    real_key = KEY.for_rsa(keypair.public.modulus, keypair.public.exponent)
    zone.add_rdata(zone.origin, c.TYPE_KEY, 3600, real_key)
    dnssec.sign_zone_locally(zone, real_key, keypair.private.sign)

    jam_name = Name((b"jam",) + zone.origin.labels)
    trap_name = Name((b"trap",) + zone.origin.labels)
    benign_name = Name((b"www",) + zone.origin.labels)
    for attack_name in (jam_name, trap_name):
        sigs = zone.find_rrset(attack_name, c.TYPE_SIG)
        assert sigs is not None, "zone must be signed before planting"
        real_a_sig = next(
            rdata
            for rdata in sigs
            if isinstance(rdata, SIG) and rdata.type_covered == c.TYPE_A
        )
        others = [
            rdata
            for rdata in sigs
            if isinstance(rdata, SIG) and rdata.type_covered != c.TYPE_A
        ]
        # Forgeries first: a budget-less validator reaches the real SIG
        # only after grinding through every forgery.
        planted = (
            _forged_sigs(real_a_sig, FORGED_SIGS, rng) + [real_a_sig] + others
        )
        zone.put_rrset(RRset(attack_name, c.TYPE_SIG, sigs.ttl, planted))

    colliding = tuple(
        forge_key_with_tag(real_key.key_tag(), rng)
        for _ in range(COLLIDING_KEYS)
    )
    # Real key first: an honest RRset with one genuine SIG validates on
    # the first pairing, so benign traffic stays inside the budget even
    # with the colliding junk keys in the trust set.  The attack names
    # still explode: their forged SIGs pair with every key in turn.
    return KeyTrapZone(
        zone=zone,
        real_key=real_key,
        trusted_keys=(real_key,) + colliding,
        jam_name=jam_name,
        trap_name=trap_name,
        benign_name=benign_name,
    )


@dataclass
class KeyTrapReport:
    """Outcome of one seeded KeyTrap attack run against the resolver."""

    seed: int
    jam_rcode: int = c.RCODE_NOERROR
    trap_rcode: int = c.RCODE_NOERROR
    max_sig_checks: int = 0
    max_key_trials: int = 0
    benign_verified: bool = False
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


def run_keytrap_attack(
    seed: int, budget: Optional[ValidationBudget] = None
) -> KeyTrapReport:
    """Drive one adversarial zone at a budgeted caching resolver."""
    budget = budget or ValidationBudget()
    adversarial = build_adversarial_zone(seed)
    query = build_in_memory_tree([adversarial.zone])
    trusted: Dict[Name, Tuple[KEY, ...]] = {
        adversarial.zone.origin: adversarial.trusted_keys
    }
    resolver = CachingResolver(
        query,
        root=adversarial.zone.origin,
        trusted_keys=trusted,
        budget=budget,
    )
    report = KeyTrapReport(seed=seed)

    for label, name in (("jam", adversarial.jam_name),
                        ("trap", adversarial.trap_name)):
        result = resolver.resolve(name, c.TYPE_A)
        if label == "jam":
            report.jam_rcode = result.rcode
        else:
            report.trap_rcode = result.rcode
        report.max_sig_checks = max(report.max_sig_checks, result.sig_checks)
        report.max_key_trials = max(report.max_key_trials, result.key_trials)
        if not result.budget_exhausted:
            report.violations.append(
                f"seed {seed}: {label} response did not exhaust the budget"
            )
        if result.rcode != c.RCODE_SERVFAIL:
            report.violations.append(
                f"seed {seed}: {label} returned rcode {result.rcode}, "
                "expected SERVFAIL refusal"
            )
        if result.answers:
            report.violations.append(
                f"seed {seed}: {label} leaked answers past the budget"
            )
        if result.sig_checks > budget.max_sig_checks:
            report.violations.append(
                f"seed {seed}: {label} burned {result.sig_checks} sig checks "
                f"(cap {budget.max_sig_checks})"
            )
        if result.key_trials > budget.max_key_trials:
            report.violations.append(
                f"seed {seed}: {label} tried {result.key_trials} keys "
                f"(cap {budget.max_key_trials})"
            )

    # The budget is per-response: the same resolver must still validate
    # honest data afterwards.
    benign = resolver.resolve(adversarial.benign_name, c.TYPE_A)
    report.benign_verified = benign.ok and benign.verified
    if not report.benign_verified:
        report.violations.append(
            f"seed {seed}: benign query failed after the attack "
            f"(rcode {benign.rcode}, verified={benign.verified})"
        )
    return report


@dataclass
class KeyTrapSmokeResult:
    """Aggregate of a multi-seed KeyTrap smoke plus the liveness probe."""

    reports: List[KeyTrapReport]
    liveness_ok: bool
    liveness_detail: str

    @property
    def ok(self) -> bool:
        return self.liveness_ok and all(r.ok for r in self.reports)

    @property
    def violations(self) -> List[str]:
        out = [v for r in self.reports for v in r.violations]
        if not self.liveness_ok:
            out.append(self.liveness_detail)
        return out


def run_keytrap_smoke(
    seeds: int,
    base_seed: int = 0,
    budget: Optional[ValidationBudget] = None,
    cluster: Tuple[int, int] = (4, 1),
    liveness: bool = True,
) -> KeyTrapSmokeResult:
    """Seeded attack sweep plus one replicated-service liveness probe.

    The attack runs entirely in the resolver tier; the probe shows the
    replicated authoritative service behind it stays live and consistent
    while the resolver is refusing adversarial responses.
    """
    reports = [
        run_keytrap_attack(base_seed + i, budget=budget) for i in range(seeds)
    ]
    liveness_ok, detail = (True, "skipped")
    if liveness:
        liveness_ok, detail = _probe_replicated_liveness(cluster)
    return KeyTrapSmokeResult(reports, liveness_ok, detail)


def _probe_replicated_liveness(cluster: Tuple[int, int]) -> Tuple[bool, str]:
    from repro.config import ServiceConfig
    from repro.core.service import ReplicatedNameService

    n, t = cluster
    with ReplicatedNameService(ServiceConfig(n=n, t=t)) as service:
        op = service.query("www.example.com.", c.TYPE_A)
        honest = len(service.honest_replicas())
        consistent = service.states_consistent()
    if op.response.rcode != c.RCODE_NOERROR:
        return False, f"liveness probe rcode {op.response.rcode}"
    if honest != n:
        return False, f"liveness probe lost replicas ({honest}/{n} honest)"
    if not consistent:
        return False, "liveness probe found divergent replica states"
    return True, f"({n},{t}) answered NOERROR, {honest}/{n} honest, consistent"
