"""The paper's goals G1/G2/G3 as machine-checked invariants.

§2 of the paper states the service's goals:

* **G1 (correctness/safety)** — all honest replicas maintain the same
  zone state and, because request execution is deterministic, produce the
  same response wire for the same request.
* **G2 (availability/liveness)** — every request of an honest client is
  eventually answered.
* **G3 (authenticity/integrity)** — every signature the service emits
  verifies under the zone key; the adversary never learns the key.

The checks below run after a chaos scenario settles.  They inspect only
honest replicas — a corrupted replica's state is allowed to be arbitrary.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.client import CompletedOp
from repro.dns import constants as c
from repro.dns import dnssec
from repro.errors import DnssecError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.chaos.scenarios import PlanOp, Scenario
    from repro.core.service import ReplicatedNameService
    from repro.sim.network import AdversarialScheduler


@dataclass
class InvariantReport:
    """Outcome of one invariant sweep; empty lists mean all checks passed."""

    g1: List[str] = field(default_factory=list)
    g2: List[str] = field(default_factory=list)
    g3: List[str] = field(default_factory=list)
    expectations: List[str] = field(default_factory=list)

    @property
    def violations(self) -> List[str]:
        return self.g1 + self.g2 + self.g3 + self.expectations

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        def flag(items: List[str]) -> str:
            return "ok" if not items else f"FAIL({len(items)})"

        return (
            f"G1={flag(self.g1)} G2={flag(self.g2)} "
            f"G3={flag(self.g3)} expects={flag(self.expectations)}"
        )


def check_g1(service: "ReplicatedNameService", report: InvariantReport) -> None:
    """Honest replicas agree on zone state, delivery order, and responses."""
    honest = service.honest_replicas()
    digests = {replica.zone.digest().hex() for replica in honest}
    if len(digests) > 1:
        report.g1.append(
            f"G1: honest zone digests diverge: {sorted(d[:16] for d in digests)}"
        )
    exec_logs = {tuple(replica.delivered_requests) for replica in honest}
    if len(exec_logs) > 1:
        lengths = sorted(len(log) for log in exec_logs)
        report.g1.append(
            f"G1: executed request sequences diverge (lengths {lengths})"
        )
    abc_digests = {
        replica.abc.delivery_digest()
        for replica in honest
        if replica.abc is not None
    }
    if len(abc_digests) > 1:
        report.g1.append("G1: atomic-broadcast delivery orders diverge")
    # Deterministic execution: for every request all honest replicas
    # executed, the produced response wire must be byte-identical.
    wire_maps = [
        {
            key.hex(): hashlib.sha256(wire).hexdigest()
            for key, wire in replica._response_cache.items()
        }
        for replica in honest
    ]
    if wire_maps:
        merged: dict = {}
        for wires in wire_maps:
            for request_hash, response_hash in wires.items():
                seen = merged.setdefault(request_hash, response_hash)
                if seen != response_hash:
                    report.g1.append(
                        f"G1: honest replicas disagree on the response for "
                        f"request {request_hash[:16]}"
                    )
                    return


def check_g2(
    plan: Sequence["PlanOp"],
    results: Sequence[Optional[CompletedOp]],
    report: InvariantReport,
) -> None:
    """Every issued client operation completed before the deadline."""
    for op, result in zip(plan, results, strict=True):
        if result is None:
            report.g2.append(
                f"G2: op {op.index} ({op.kind} {op.name}) never answered"
            )


def check_g3(
    service: "ReplicatedNameService",
    results: Sequence[Optional[CompletedOp]],
    report: InvariantReport,
) -> None:
    """Every emitted SIG verifies; positive read answers carry valid SIGs."""
    if not service.config.signed_zone:
        return
    for replica in service.honest_replicas():
        try:
            dnssec.verify_zone(replica.zone, service.deployment.zone_key_record)
        except DnssecError as exc:
            report.g3.append(
                f"G3: replica {replica.index} zone has an invalid SIG: {exc}"
            )
    for result in results:
        if result is None or result.kind != "read" or result.response is None:
            continue
        response = result.response
        if response.rcode != c.RCODE_NOERROR or not response.answers:
            continue  # negative answers carry no data RRsets to verify
        if not result.verified:
            report.g3.append(
                f"G3: accepted positive answer for op msg_id={result.msg_id} "
                f"failed signature verification (from replica "
                f"{result.accepted_from})"
            )


def check_expectations(
    scenario: "Scenario",
    service: "ReplicatedNameService",
    adversary: "AdversarialScheduler",
    report: InvariantReport,
) -> None:
    """Scenario-specific assertions that the attack actually happened.

    A chaos scenario that silently stops attacking would pass G1–G3
    vacuously; these checks keep the harness honest about its coverage
    (e.g. ``slowpath`` must demonstrably force OptProof's fall-back).
    """
    honest = service.honest_replicas()
    for expectation in scenario.expects:
        if expectation == "optproof_fallback":
            fallbacks = sum(r.coordinator.fallback_rounds() for r in honest)
            if fallbacks == 0:
                report.expectations.append(
                    "expect: no honest replica entered the OptProof slow path"
                )
        elif expectation == "epoch_change":
            changes = sum(
                r.abc.stats["epoch_changes"] for r in honest if r.abc is not None
            )
            if changes == 0:
                report.expectations.append(
                    "expect: no epoch change happened under the Byzantine leader"
                )
        elif expectation == "partition_heal":
            if adversary.stats["held"] == 0:
                report.expectations.append(
                    "expect: the partition never held any message"
                )
        elif expectation == "malformed_batch":
            garbled = sum(
                r.fault.stats["garbled_batches"] for r in service.replicas
            )
            if garbled == 0:
                report.expectations.append(
                    "expect: the Byzantine gateway garbled no batch frame"
                )
        elif expectation == "poisoned":
            poisoned = sum(
                r.fault.stats["poisoned_responses"] for r in service.replicas
            )
            if poisoned == 0:
                report.expectations.append(
                    "expect: the poisoning replica replayed no stale answer"
                )
        elif expectation == "erasure":
            reconstructions = sum(
                r.abc.stats["erasure_reconstructions"]
                for r in honest
                if r.abc is not None
            )
            if reconstructions == 0:
                report.expectations.append(
                    "expect: no replica reconstructed a payload from fragments"
                )
        elif expectation == "batched":
            batches = sum(r.stats["batches_delivered"] for r in honest)
            if batches == 0:
                report.expectations.append("expect: no batch was delivered")
        else:
            report.expectations.append(f"expect: unknown expectation {expectation!r}")


def check_invariants(
    service: "ReplicatedNameService",
    plan: Sequence["PlanOp"],
    results: Sequence[Optional[CompletedOp]],
    scenario: "Scenario",
    adversary: "AdversarialScheduler",
) -> InvariantReport:
    """Run the full G1/G2/G3 + expectation sweep after a settled run."""
    report = InvariantReport()
    check_g1(service, report)
    check_g2(plan, results, report)
    check_g3(service, results, report)
    check_expectations(scenario, service, adversary, report)
    return report


# --------------------------------------------------------------------------
# Protocol-level invariants over plain data (used by ``repro explore``)
# --------------------------------------------------------------------------
#
# The systematic explorer (DESIGN.md §5j) checks the same goals as the
# chaos harness but at the protocol layer, against whatever each honest
# replica has delivered/decided so far.  These helpers are pure functions
# over plain data so that the explorer's models — which hold raw protocol
# objects, not a ReplicatedNameService — can call them at every quiescent
# state without any service plumbing.


def check_broadcast_agreement(
    delivered: "Dict[int, Optional[bytes]]",
) -> List[str]:
    """Bracha agreement (G1): no two honest replicas deliver different
    payloads for the same broadcast instance.  ``None`` = not delivered
    yet, which is always admissible mid-run."""
    values = {i: v for i, v in delivered.items() if v is not None}
    if len(set(values.values())) > 1:
        detail = ", ".join(
            f"replica {i}: {v!r:.40}" for i, v in sorted(values.items())
        )
        return [f"broadcast agreement violated: {detail}"]
    return []


def check_broadcast_validity(
    delivered: "Dict[int, Optional[bytes]]", payload: bytes
) -> List[str]:
    """With an honest sender (G3 direction): anything delivered must be
    the sender's payload."""
    out = []
    for i, value in sorted(delivered.items()):
        if value is not None and value != payload:
            out.append(
                f"broadcast validity violated: replica {i} delivered"
                f" {value!r:.40} != sender payload {payload!r:.40}"
            )
    return out


def check_broadcast_totality(
    delivered: "Dict[int, Optional[bytes]]",
) -> List[str]:
    """At quiescence (all messages drained): if any honest replica
    delivered, every honest replica must have (G2 at the protocol layer)."""
    values = [v for v in delivered.values() if v is not None]
    if not values:
        return []
    missing = sorted(i for i, v in delivered.items() if v is None)
    if missing:
        return [
            f"broadcast totality violated: replicas {missing} never"
            " delivered while others did"
        ]
    return []


def check_agreement_decisions(
    decisions: "Dict[int, Optional[int]]",
    proposed: "Optional[Sequence[int]]" = None,
) -> List[str]:
    """Binary-agreement safety: honest decisions agree, and (when every
    honest proposal is known and unanimous) match the proposals."""
    out = []
    values = {i: v for i, v in decisions.items() if v is not None}
    if len(set(values.values())) > 1:
        detail = ", ".join(f"replica {i}: {v}" for i, v in sorted(values.items()))
        out.append(f"agreement violated: {detail}")
    if proposed and len(set(proposed)) == 1 and values:
        want = next(iter(set(proposed)))
        for i, got in sorted(values.items()):
            if got != want:
                out.append(
                    f"agreement validity violated: replica {i} decided"
                    f" {got} from unanimous honest proposals {want}"
                )
    return out


def check_agreement_termination(
    decisions: "Dict[int, Optional[int]]",
) -> List[str]:
    """At quiescence: every honest replica must have decided."""
    missing = sorted(i for i, v in decisions.items() if v is None)
    if missing:
        return [f"agreement termination violated: replicas {missing} undecided"]
    return []


def check_total_order(logs: "Dict[int, Sequence[Tuple[int, str]]]") -> List[str]:
    """Atomic-broadcast total order (G1): every honest replica's
    ``delivered_log`` must be a prefix of every longer honest log."""
    out = []
    items = sorted(logs.items())
    for ai in range(len(items)):
        for bi in range(ai + 1, len(items)):
            a, la = items[ai]
            b, lb = items[bi]
            short, long_ = (la, lb) if len(la) <= len(lb) else (lb, la)
            if list(short) != list(long_[: len(short)]):
                out.append(
                    f"total order violated: replica {a} log"
                    f" {list(la)[:6]}... diverges from replica {b} log"
                    f" {list(lb)[:6]}..."
                )
    return out
