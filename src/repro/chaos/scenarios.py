"""Chaos scenarios: seeded Byzantine schedules over the simulated service.

A :class:`Scenario` bundles a service configuration, a corruption
placement, an adversarial network schedule, and a workload shape.
:func:`run_scenario` instantiates it on a given ``(n, t)`` cluster with a
given seed, drives a randomized client workload to completion, checks the
paper's G1/G2/G3 goals, and returns a :class:`ChaosResult` whose
*transcript* — plan, adversary decisions, outcomes, state digests, and
the raw simulator event stream — hashes identically on every replay of
the same seed.  That hash is the replay contract: CI prints the failing
seed and the exact ``repro chaos`` command that reproduces it.
"""

from __future__ import annotations

import hashlib
import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chaos.invariants import InvariantReport, check_invariants
from repro.config import ServiceConfig
from repro.core.client import CompletedOp
from repro.core.faults import CorruptionMode
from repro.core.keytool import Deployment, ReplicaKeys
from repro.core.service import ReplicatedNameService
from repro.crypto.params import safe_prime_pair_at
from repro.crypto.rsa import RsaKeyPair, generate_rsa_keypair
from repro.crypto.shoup import deal_threshold_key
from repro.dns import constants as c
from repro.dns.name import Name
from repro.dns.rdata import rdata_from_text
from repro.dns.tsig import TsigKey
from repro.errors import ConfigError
from repro.sim.network import AdversarialScheduler, PartitionWindow

# ---------------------------------------------------------------------------
# Scenario definition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Scenario:
    """One named chaos experiment, parameterized over cluster size."""

    name: str
    description: str
    # Service shape.
    protocol: str = "optte"
    client_model: str = "pragmatic"
    gateway: int = 0
    batch_size: int = 1
    batch_delay: float = 0.05
    sign_every_response: bool = False
    abc_timeout: float = 3.0
    client_timeout: float = 6.0
    # Broadcast-plane dissemination (DESIGN.md §5i): "full", "digest",
    # or "erasure"; erasure_min_bytes lowers the fragmentation floor so
    # small chaos payloads still exercise the fragment path.
    broadcast_mode: str = "digest"
    erasure_min_bytes: int = 256
    # Corruption placement: ``corruptions[i]`` is applied to replica
    # ``placement[i]``; only the first ``t`` pairs are used, so the same
    # scenario scales from (4,1) to (7,2).
    corruptions: Tuple[CorruptionMode, ...] = ()
    placement: Tuple[int, ...] = ()
    # Network adversary.
    drop_rate: float = 0.0
    dup_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: float = 0.25
    slow_senders: Tuple[int, ...] = ()
    slow_delay: float = 0.0
    partition_window: Optional[Tuple[float, float]] = None
    active_until: float = 25.0
    # Workload shape.
    ops: int = 14
    gap: Tuple[float, float] = (0.2, 1.2)
    workload: str = "random"  # or "alternating" (read/update one hot name)
    read_weight: float = 0.6
    # Coverage assertions checked by the invariant sweep.
    expects: Tuple[str, ...] = ()


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            name="mixed",
            description=(
                "drops (client links), duplicates, and random delays on all "
                "links — the baseline asynchrony the protocol must shrug off"
            ),
            drop_rate=0.12,
            dup_rate=0.15,
            delay_rate=0.35,
            max_delay=0.3,
            client_timeout=5.0,
            ops=16,
            gap=(0.15, 0.9),
        ),
        Scenario(
            name="partition",
            description=(
                "partition the replica set down the middle mid-run, heal, "
                "and require every request to complete after the heal"
            ),
            delay_rate=0.15,
            max_delay=0.2,
            partition_window=(2.0, 9.0),
            active_until=20.0,
            client_timeout=4.0,
            ops=10,
            expects=("partition_heal",),
        ),
        Scenario(
            name="slowpath",
            description=(
                "corrupted replicas send garbage signature shares while the "
                "adversary slows an honest one, forcing OptProof off its "
                "optimistic path into proof-backed share verification"
            ),
            protocol="optproof",
            corruptions=(CorruptionMode.BAD_SHARES, CorruptionMode.BAD_SHARES),
            placement=(1, 4),
            slow_senders=(2,),
            slow_delay=0.5,
            read_weight=0.3,
            ops=10,
            expects=("optproof_fallback",),
        ),
        Scenario(
            name="equivocate",
            description=(
                "the epoch leader equivocates its ORDER messages (different "
                "payloads to different replicas), forcing complaints and an "
                "epoch change to an honest leader"
            ),
            corruptions=(
                CorruptionMode.EQUIVOCATE,
                CorruptionMode.WITHHOLD_SHARES,
            ),
            placement=(0, 4),
            abc_timeout=2.5,
            delay_rate=0.1,
            max_delay=0.1,
            ops=8,
            expects=("epoch_change",),
        ),
        Scenario(
            name="batch",
            description=(
                "a Byzantine non-leader gateway garbles the batch frames it "
                "forwards; honest replicas reject the malformed batches "
                "identically and clients recover via retry to honest servers"
            ),
            gateway=1,
            batch_size=4,
            batch_delay=0.05,
            corruptions=(
                CorruptionMode.MALFORMED_BATCHES,
                CorruptionMode.BAD_SHARES,
            ),
            placement=(1, 4),
            client_timeout=3.0,
            ops=12,
            gap=(0.002, 0.02),
            read_weight=0.85,
            expects=("malformed_batch", "batched"),
        ),
        Scenario(
            name="erasure",
            description=(
                "erasure-coded dissemination under drops, duplicates and "
                "delays: every request travels as Reed-Solomon fragments "
                "(no link carries a whole payload) and a corrupted replica "
                "withholds its signature shares on top"
            ),
            broadcast_mode="erasure",
            erasure_min_bytes=1,
            corruptions=(
                CorruptionMode.WITHHOLD_SHARES,
                CorruptionMode.BAD_SHARES,
            ),
            placement=(1, 4),
            dup_rate=0.1,
            delay_rate=0.25,
            max_delay=0.2,
            ops=12,
            expects=("erasure",),
        ),
        Scenario(
            name="poison",
            description=(
                "a corrupted replica replays stale signed answers with fresh "
                "message ids (the §3.4 replay attack); full clients outvote "
                "it with a t+1 majority"
            ),
            client_model="full",
            corruptions=(
                CorruptionMode.POISON_STALE,
                CorruptionMode.STALE_READS,
            ),
            placement=(1, 5),
            dup_rate=0.1,
            delay_rate=0.2,
            max_delay=0.2,
            ops=12,
            workload="alternating",
            expects=("poisoned",),
        ),
    )
}


# ---------------------------------------------------------------------------
# Pinned key material
# ---------------------------------------------------------------------------

# Threshold keys are dealt once per cluster size from *indexed* safe-prime
# pool entries (never the process-global cursor), so the RSA private
# exponents — and with them every assembled threshold signature and coin
# value — are identical in every process that runs a chaos scenario.
# Auth keypairs and share polynomials are freshly random, but they only
# ever influence bytes in transit (share values, proofs, transport
# signatures), none of which enter the transcript.
@dataclass(frozen=True)
class _KeyMaterial:
    zone_public: object
    zone_shares: tuple
    coin_public: object
    coin_shares: tuple
    auth_keys: Tuple[RsaKeyPair, ...]
    tsig_key: TsigKey


_KEY_CACHE: Dict[Tuple[int, int], _KeyMaterial] = {}


def _key_material(n: int, t: int) -> _KeyMaterial:
    cached = _KEY_CACHE.get((n, t))
    if cached is not None:
        return cached
    zone_p, zone_q = safe_prime_pair_at(256, 0)
    coin_p, coin_q = safe_prime_pair_at(256, 1)
    zone_public, zone_shares = deal_threshold_key(
        n=n, t=t, bits=512, prime_p=zone_p, prime_q=zone_q
    )
    coin_public, coin_shares = deal_threshold_key(
        n=n, t=t, bits=512, prime_p=coin_p, prime_q=coin_q
    )
    material = _KeyMaterial(
        zone_public=zone_public,
        zone_shares=zone_shares,
        coin_public=coin_public,
        coin_shares=coin_shares,
        auth_keys=tuple(generate_rsa_keypair(512) for _ in range(n)),
        tsig_key=TsigKey(
            name=Name.from_text("update-key.repro."),
            secret=b"repro-update-key-secret",
        ),
    )
    _KEY_CACHE[(n, t)] = material
    return material


def _deployment_for(config: ServiceConfig) -> Deployment:
    material = _key_material(config.n, config.t)
    replicas = tuple(
        ReplicaKeys(
            index=i,
            zone_share=material.zone_shares[i],
            coin_share=material.coin_shares[i],
            auth_key=material.auth_keys[i],
        )
        for i in range(config.n)
    )
    return Deployment(
        config=config,
        zone_public=material.zone_public,
        coin_public=material.coin_public,
        auth_public=tuple(k.public for k in material.auth_keys),
        replicas=replicas,
        tsig_key=material.tsig_key,
    )


# ---------------------------------------------------------------------------
# Workload plan
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PlanOp:
    """One pre-planned client operation (built before the run starts)."""

    index: int
    time: float
    kind: str  # "read" / "add" / "delete"
    name: str
    rtype: int = c.TYPE_A
    rdata: str = ""


def _build_plan(scenario: Scenario, seed: int) -> List[PlanOp]:
    rng = random.Random(seed ^ 0xC0FFEE)
    plan: List[PlanOp] = []
    now = 0.5
    if scenario.workload == "alternating":
        # Hammer one hot name: read it, update it, read it again — the
        # shape that makes stale-answer replay actually stale.
        for i in range(scenario.ops):
            if i % 2 == 0:
                plan.append(PlanOp(i, now, "read", "www.example.com."))
            else:
                plan.append(
                    PlanOp(
                        i,
                        now,
                        "add",
                        "www.example.com.",
                        c.TYPE_A,
                        f"192.0.2.{100 + i}",
                    )
                )
            now += rng.uniform(*scenario.gap)
        return plan
    base_names = ["www.example.com.", "ns1.example.com.", "ns2.example.com."]
    added: List[str] = []
    fresh = 0
    for i in range(scenario.ops):
        roll = rng.random()
        if roll < scenario.read_weight:
            pool = base_names + added
            name = pool[rng.randrange(len(pool))]
            if rng.random() < 0.1:
                plan.append(PlanOp(i, now, "read", "example.com.", c.TYPE_SOA))
            else:
                plan.append(PlanOp(i, now, "read", name))
        elif added and rng.random() < 0.25:
            victim = added.pop(rng.randrange(len(added)))
            plan.append(PlanOp(i, now, "delete", victim))
        else:
            fresh += 1
            name = f"host{fresh}.example.com."
            added.append(name)
            plan.append(
                PlanOp(i, now, "add", name, c.TYPE_A, f"192.0.2.{10 + fresh}")
            )
        now += rng.uniform(*scenario.gap)
    return plan


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class ChaosResult:
    """Outcome of one scenario run on one cluster with one seed."""

    scenario: str
    cluster: Tuple[int, int]
    seed: int
    report: InvariantReport
    transcript: str
    transcript_hash: str
    results: List[Optional[CompletedOp]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.report.ok

    @property
    def violations(self) -> List[str]:
        return self.report.violations


def _issue_op(
    service: ReplicatedNameService,
    op: PlanOp,
    results: List[Optional[CompletedOp]],
) -> None:
    def done(completed: CompletedOp) -> None:
        results[op.index] = completed

    name = Name.from_text(op.name)
    if op.kind == "read":
        service.client.query(name, op.rtype, done)
    elif op.kind == "add":
        rdata = rdata_from_text(op.rtype, op.rdata.split(), service.zone_origin)
        service.client.add_record(name, op.rtype, 300, rdata, done)
    elif op.kind == "delete":
        service.client.delete_name(name, done)
    else:  # pragma: no cover - plans only contain the kinds above
        raise ConfigError(f"unknown op kind {op.kind!r}")


def run_scenario(
    scenario: str | Scenario,
    cluster: Tuple[int, int] = (4, 1),
    seed: int = 0,
    deadline: float = 240.0,
) -> ChaosResult:
    """Run one scenario on an ``(n, t)`` cluster; fully seed-determined."""
    if isinstance(scenario, str):
        try:
            scenario = SCENARIOS[scenario]
        except KeyError:
            raise ConfigError(
                f"unknown scenario {scenario!r}; "
                f"choose from {sorted(SCENARIOS)}"
            ) from None
    n, t = cluster
    config = ServiceConfig(
        n=n,
        t=t,
        signing_protocol=scenario.protocol,
        batch_size=scenario.batch_size,
        batch_delay=scenario.batch_delay,
        sign_every_response=scenario.sign_every_response,
        abc_timeout=scenario.abc_timeout,
        client_timeout=scenario.client_timeout,
        broadcast_mode=scenario.broadcast_mode,
        erasure_min_bytes=scenario.erasure_min_bytes,
    )
    service = ReplicatedNameService(
        config,
        deployment=_deployment_for(config),
        client_model=scenario.client_model,
        gateway=scenario.gateway % n,
        seed=seed,
    )

    partitions: Tuple[PartitionWindow, ...] = ()
    if scenario.partition_window is not None:
        start, heal = scenario.partition_window
        left = tuple(range((n + 1) // 2))
        right = tuple(range((n + 1) // 2, n))
        partitions = (PartitionWindow(start=start, heal=heal, groups=(left, right)),)
    adversary = AdversarialScheduler(
        seed=seed * 1_000_003 + zlib.crc32(scenario.name.encode()),
        n_replicas=n,
        drop_rate=scenario.drop_rate,
        dup_rate=scenario.dup_rate,
        delay_rate=scenario.delay_rate,
        max_delay=scenario.max_delay,
        slow_senders=tuple(s for s in scenario.slow_senders if s < n),
        slow_delay=scenario.slow_delay,
        partitions=partitions,
        active_until=scenario.active_until,
    )
    service.net.set_adversary(adversary)

    corrupted: List[Tuple[int, CorruptionMode]] = []
    for replica, mode in list(zip(scenario.placement, scenario.corruptions, strict=False))[:t]:
        if replica >= n:
            continue
        service.corrupt(replica, mode)
        corrupted.append((replica, mode))

    # Fold the raw event stream into the transcript: two runs of the same
    # seed must execute the exact same events at the exact same times.
    stream = hashlib.sha256()
    service.net.sim.trace = lambda time, seq: stream.update(
        f"{time:.9f}:{seq};".encode()
    )

    plan = _build_plan(scenario, seed)
    results: List[Optional[CompletedOp]] = [None] * len(plan)
    for op in plan:
        service.net.sim.schedule_at(
            op.time, (lambda o: lambda: _issue_op(service, o, results))(op)
        )
    service.net.sim.run(
        until=deadline,
        condition=lambda: all(r is not None for r in results),
    )
    service.settle(30.0)

    report = check_invariants(service, plan, results, scenario, adversary)

    lines: List[str] = [
        f"chaos scenario={scenario.name} cluster={n},{t} seed={seed}",
        f"corrupt " + " ".join(f"{r}:{m.name}" for r, m in corrupted)
        if corrupted
        else "corrupt none",
    ]
    for op in plan:
        detail = f" {op.rdata}" if op.rdata else ""
        lines.append(
            f"plan {op.index} t={op.time:.6f} {op.kind} {op.name} "
            f"type={op.rtype}{detail}"
        )
    lines.extend(f"adv {entry}" for entry in adversary.log)
    for op, outcome in zip(plan, results, strict=True):
        if outcome is None:
            lines.append(f"op {op.index} {op.kind} {op.name} -> UNANSWERED")
        else:
            rcode = outcome.response.rcode if outcome.response else -1
            lines.append(
                f"op {op.index} {op.kind} {op.name} -> rcode={rcode} "
                f"from={outcome.accepted_from} verified={int(outcome.verified)} "
                f"retries={outcome.retries} latency={outcome.latency:.6f}"
            )
    honest = service.honest_replicas()
    zone_digests = sorted({r.zone.digest().hex()[:16] for r in honest})
    abc_digests = sorted(
        {r.abc.delivery_digest()[:16] for r in honest if r.abc is not None}
    )
    delivered = sorted({len(r.delivered_requests) for r in honest})
    lines.append(
        f"digest zone={','.join(zone_digests)} abc={','.join(abc_digests)} "
        f"delivered={','.join(str(d) for d in delivered)}"
    )
    abc_stats = [r.abc.stats for r in honest if r.abc is not None]
    lines.append(
        "stats fast={} recovery={} epochs={} signing_rounds={} "
        "fallbacks={} batches={}".format(
            sum(s["fast_deliveries"] for s in abc_stats),
            sum(s["recovery_deliveries"] for s in abc_stats),
            sum(s["epoch_changes"] for s in abc_stats),
            sum(r.signing_rounds for r in honest),
            sum(r.coordinator.fallback_rounds() for r in honest),
            sum(r.stats["batches_delivered"] for r in honest),
        )
    )
    lines.append(
        "bcast stats mode={} pulls_sent={} pulls_served={} "
        "erasure_disperses={} erasure_reconstructions={}".format(
            scenario.broadcast_mode,
            sum(s["pulls_sent"] for s in abc_stats),
            sum(s["pulls_served"] for s in abc_stats),
            sum(s["erasure_disperses"] for s in abc_stats),
            sum(s["erasure_reconstructions"] for s in abc_stats),
        )
    )
    # Per-replica bandwidth ledger (replica node ids are 0..n-1; higher
    # ids are client endpoints).  Deterministic: byte counters are part
    # of the seed-determined event stream.
    lines.append(
        "bandwidth total={} per_replica_out={} per_replica_in={}".format(
            service.net.bytes_sent,
            ",".join(str(service.net.bytes_out.get(i, 0)) for i in range(n)),
            ",".join(str(service.net.bytes_in.get(i, 0)) for i in range(n)),
        )
    )
    top_types = sorted(
        service.net.bytes_by_type.items(), key=lambda kv: (-kv[1], kv[0])
    )[:8]
    lines.append(
        "bandwidth types " + " ".join(f"{name}={size}" for name, size in top_types)
    )
    lines.append(
        "adv stats dropped={dropped} duplicated={duplicated} "
        "delayed={delayed} held={held}".format(**adversary.stats)
    )
    lines.append(f"invariants {report.summary()}")
    for violation in report.violations:
        lines.append(f"violation {violation}")
    lines.append(
        f"events={service.net.sim.events_processed} "
        f"eventstream={stream.hexdigest()} t_end={service.net.sim.now:.6f}"
    )
    transcript = "\n".join(lines) + "\n"
    return ChaosResult(
        scenario=scenario.name,
        cluster=cluster,
        seed=seed,
        report=report,
        transcript=transcript,
        transcript_hash=hashlib.sha256(transcript.encode()).hexdigest(),
        results=results,
    )
