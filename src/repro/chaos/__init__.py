"""Deterministic, seed-replayable chaos harness for the replicated DNS.

``repro.chaos`` layers an adversarial scheduler and an extended Byzantine
fault palette on top of the discrete-event simulator, runs randomized
client workloads against small clusters, and checks the paper's goals —
G1 (safety), G2 (liveness), G3 (authenticity) — after every run.  Every
decision flows from the run's seed, so a violation found in CI replays
exactly from ``repro chaos --seed N --scenario X``.
"""

from repro.chaos.invariants import InvariantReport, check_invariants
from repro.chaos.keytrap import (
    KeyTrapReport,
    KeyTrapSmokeResult,
    build_adversarial_zone,
    forge_key_with_tag,
    run_keytrap_attack,
    run_keytrap_smoke,
)
from repro.chaos.scenarios import (
    SCENARIOS,
    ChaosResult,
    Scenario,
    run_scenario,
)

__all__ = [
    "SCENARIOS",
    "ChaosResult",
    "InvariantReport",
    "KeyTrapReport",
    "KeyTrapSmokeResult",
    "Scenario",
    "build_adversarial_zone",
    "check_invariants",
    "forge_key_with_tag",
    "run_keytrap_attack",
    "run_keytrap_smoke",
]
