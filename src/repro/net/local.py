"""In-process asyncio transport: the replicated service in real time.

:class:`AsyncNode` implements the same node interface as
:class:`repro.sim.network.SimNode` (``send``, ``set_handler``,
``schedule_timer``, ``charge``, ``now``, ``dropped``), but messages flow
through asyncio queues and timers are real.  ``charge`` is a no-op —
wall-clock CPU time is genuinely spent by the Python crypto.

Optionally a latency :class:`repro.sim.machines.Topology` can be
attached, in which case deliveries are delayed by the configured one-way
times, turning the local bus into a miniature WAN.

This module deliberately contains no protocol logic: it instantiates the
exact :class:`repro.core.replica.ReplicaServer` and
:class:`repro.core.client.PragmaticClient`/:class:`FullClient` objects the
simulator uses.
"""

from __future__ import annotations

import asyncio
import copy
from typing import Any, Callable, List, Optional

from repro.config import ServiceConfig
from repro.core.client import CompletedOp, FullClient, PragmaticClient
from repro.core.keytool import Deployment, generate_deployment
from repro.core.replica import ReplicaServer
from repro.crypto.costmodel import CostModel
from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.name import Name
from repro.dns.rdata import rdata_from_text
from repro.dns.zonefile import parse_zone_text
from repro.errors import ConfigError
from repro.sim.machines import Topology

Handler = Callable[[int, Any], None]


class _TimerHandle:
    """Cancellable wrapper matching the simulator's event handle API."""

    def __init__(self, handle: asyncio.TimerHandle) -> None:
        self._handle = handle

    def cancel(self) -> None:
        self._handle.cancel()


class AsyncNode:
    """One endpoint on the asyncio bus (same interface as ``SimNode``)."""

    def __init__(self, node_id: int, network: "AsyncNetwork") -> None:
        self.node_id = node_id
        self.network = network
        self.handler: Optional[Handler] = None
        self.dropped = False

    # -- node interface used by replicas/clients -----------------------------

    def set_handler(self, handler: Handler) -> None:
        self.handler = handler

    @property
    def now(self) -> float:
        return self.network.loop.time()

    def charge(self, reference_seconds: float) -> None:
        """No-op: real CPU time is spent by the actual computation."""

    def charge_ops(self, ops, costs: CostModel) -> None:
        """No-op (see :meth:`charge`)."""

    def send(self, dest: int, payload: Any) -> None:
        self.network.transmit(self.node_id, dest, payload)

    def schedule_timer(self, delay: float, thunk: Callable[[], None]) -> _TimerHandle:
        return _TimerHandle(self.network.loop.call_later(delay, thunk))

    def run_local(self, delay: float, thunk: Callable[[], None]) -> None:
        self.network.loop.call_later(delay, thunk)

    # -- delivery --------------------------------------------------------------

    def _deliver(self, sender: int, payload: Any) -> None:
        if self.dropped or self.handler is None:
            return
        self.handler(sender, payload)


class AsyncNetwork:
    """An in-process message bus with optional simulated link latency."""

    def __init__(self, node_count: int, topology: Optional[Topology] = None) -> None:
        try:
            self.loop = asyncio.get_running_loop()
        except RuntimeError as exc:
            raise ConfigError(
                "AsyncNetwork must be created inside a running event loop"
            ) from exc
        self.topology = topology
        self.nodes: List[AsyncNode] = [AsyncNode(i, self) for i in range(node_count)]
        self.messages_sent = 0

    def node(self, node_id: int) -> AsyncNode:
        return self.nodes[node_id]

    def add_node(self) -> AsyncNode:
        node = AsyncNode(len(self.nodes), self)
        self.nodes.append(node)
        return node

    def transmit(self, src: int, dest: int, payload: Any) -> None:
        if not 0 <= dest < len(self.nodes):
            raise ConfigError(f"no node {dest}")
        self.messages_sent += 1
        # Deep-copy so peers cannot share mutable state through "the wire".
        payload = copy.deepcopy(payload)
        delay = self._link_delay(src, dest)
        receiver = self.nodes[dest]
        if delay > 0:
            self.loop.call_later(delay, receiver._deliver, src, payload)
        else:
            self.loop.call_soon(receiver._deliver, src, payload)

    def _link_delay(self, src: int, dest: int) -> float:
        if self.topology is None or src == dest:
            return 0.0
        a = min(src, len(self.topology) - 1)
        b = min(dest, len(self.topology) - 1)
        if a == b:
            return 0.0
        return self.topology.one_way_delay(a, b)


class AsyncNameService:
    """A live, wall-clock deployment of the replicated name service.

    Usage (inside a coroutine)::

        service = AsyncNameService(ServiceConfig(n=4, t=1))
        op = await service.query("www.example.com.", c.TYPE_A)
        op = await service.add_record("x.example.com.", c.TYPE_A, 300, "192.0.2.9")
    """

    def __init__(
        self,
        config: ServiceConfig,
        zone_text: Optional[str] = None,
        topology: Optional[Topology] = None,
        client_model: str = "pragmatic",
        deployment: Optional[Deployment] = None,
        gateway: int = 0,
    ) -> None:
        from repro.core.service import (
            DEFAULT_ZONE,
            build_crypto_plane,
            local_threshold_signer,
        )

        self.config = config
        self.net = AsyncNetwork(config.n, topology=topology)
        self.deployment = (
            deployment if deployment is not None else generate_deployment(config)
        )
        # Real-time runs are where the pool plane actually pays off: the
        # worker processes do the modexps while the event loop keeps
        # pumping messages.
        self._pool, self._replica_executors, self._client_executor = (
            build_crypto_plane(config, self.deployment)
        )

        base_zone = parse_zone_text(zone_text or DEFAULT_ZONE)
        self.zone_origin = base_zone.origin
        if config.signed_zone:
            key_record = self.deployment.zone_key_record
            base_zone.add_rdata(base_zone.origin, c.TYPE_KEY, 3600, key_record)
            signer = local_threshold_signer(
                self.deployment.zone_public,
                [r.zone_share for r in self.deployment.replicas],
            )
            dnssec.sign_zone_locally(base_zone, key_record, signer)

        self.replicas: List[ReplicaServer] = [
            ReplicaServer(
                index=i,
                deployment=self.deployment,
                zone=base_zone.copy(),
                node=self.net.node(i),
                executor=self._replica_executors[i],
            )
            for i in range(config.n)
        ]

        client_node = self.net.add_node()
        client_args = dict(
            node=client_node,
            config=config,
            replica_ids=list(range(config.n)),
            zone_origin=self.zone_origin,
            zone_key=self.deployment.zone_key_record if config.signed_zone else None,
            tsig_key=self.deployment.tsig_key if config.require_tsig else None,
            executor=self._client_executor,
        )
        if client_model == "pragmatic":
            self.client = PragmaticClient(gateway=gateway, **client_args)
        elif client_model == "full":
            self.client = FullClient(**client_args)
        else:
            raise ConfigError(f"unknown client model {client_model!r}")
        self.extra_clients: List[PragmaticClient] = []

    def add_client(self, gateway: int = 0) -> PragmaticClient:
        """Add another pragmatic client on its own bus endpoint.

        Concurrent clients are what fill a gateway's :class:`BatchQueue`
        before its flush timer fires — a single request/response client
        never has two payloads in flight at once.
        """
        client = PragmaticClient(
            gateway=gateway,
            node=self.net.add_node(),
            config=self.config,
            replica_ids=list(range(self.config.n)),
            zone_origin=self.zone_origin,
            zone_key=(
                self.deployment.zone_key_record if self.config.signed_zone else None
            ),
            tsig_key=(
                self.deployment.tsig_key if self.config.require_tsig else None
            ),
            executor=self._client_executor,
        )
        self.extra_clients.append(client)
        return client

    def close(self) -> None:
        """Shut down the shared crypto worker pool, if one was started."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # -- async experiment API ---------------------------------------------------

    async def _await_op(self, issue, timeout: float = 60.0) -> CompletedOp:
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        issue(lambda op: future.done() or future.set_result(op))
        return await asyncio.wait_for(future, timeout=timeout)

    async def query(
        self,
        name: str | Name,
        rtype: int = c.TYPE_A,
        client: Optional[PragmaticClient] = None,
    ) -> CompletedOp:
        qname = Name.from_text(name) if isinstance(name, str) else name
        issuer = client if client is not None else self.client
        return await self._await_op(
            lambda cb: issuer.query(qname, rtype, cb)
        )

    async def add_record(
        self, name: str | Name, rtype: int, ttl: int, rdata_text: str
    ) -> CompletedOp:
        owner = Name.from_text(name) if isinstance(name, str) else name
        rdata = rdata_from_text(rtype, rdata_text.split(), self.zone_origin)
        return await self._await_op(
            lambda cb: self.client.add_record(owner, rtype, ttl, rdata, cb)
        )

    async def delete_name(self, name: str | Name) -> CompletedOp:
        owner = Name.from_text(name) if isinstance(name, str) else name
        return await self._await_op(lambda cb: self.client.delete_name(owner, cb))

    async def settle(self, duration: float = 0.2) -> None:
        """Give in-flight replica work time to finish."""
        await asyncio.sleep(duration)

    def states_consistent(self) -> bool:
        digests = {
            replica.zone.digest()
            for replica in self.replicas
            if not replica.fault.is_corrupted
        }
        return len(digests) == 1

    def verify_all_zones(self) -> int:
        total = 0
        for replica in self.replicas:
            if replica.fault.is_corrupted:
                continue
            total += dnssec.verify_zone(
                replica.zone, self.deployment.zone_key_record
            )
        return total
