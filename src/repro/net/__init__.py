"""Real-time (asyncio) transport.

The protocol stack is sans-IO and the replica/client code talks to its
node through a small interface (``send`` / ``set_handler`` /
``schedule_timer`` / ``charge``).  :mod:`repro.net.local` implements that
interface over asyncio, so the *same* replicas and clients that run on
the deterministic simulator also run concurrently in real wall-clock
time — the in-process equivalent of the paper's TCP deployment.
"""

from repro.net.local import AsyncNameService, AsyncNetwork, AsyncNode

__all__ = ["AsyncNameService", "AsyncNetwork", "AsyncNode"]
