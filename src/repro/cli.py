"""Command-line interface: the operational tools of the paper's prototype.

Subcommands mirror the utilities the prototype relied on:

* ``keygen``   — the trusted initialization of §4.3: deal zone/coin/auth
  keys for an (n, t) deployment and write one key file per replica.
* ``signzone`` — the "special command ... to sign the zone data using the
  distributed key" (§4.3): sign a master file with key shares.
* ``verifyzone`` — DNSSEC-verify every SIG in a signed zone file.
* ``dig``      — resolve a name against a simulated deployment.
* ``nsupdate`` — add/delete records against a simulated deployment.
* ``bench``    — run one Table 2 cell and print read/add/delete latency.
* ``chaos``    — run seed-replayable Byzantine fault-injection scenarios
  and check the paper's G1/G2/G3 goals; failures print the replaying seed.
* ``explore``  — systematically enumerate message interleavings of the
  replicated protocols (DPOR model checking), replay counterexample
  schedule files, and dynamically confirm static race findings.

Run ``python -m repro.cli <subcommand> --help`` for details.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.config import ServiceConfig
from repro.dns import constants as c


def _add_service_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("-n", type=int, default=4, help="number of replicas")
    parser.add_argument("-t", type=int, default=1, help="corruptions tolerated")
    parser.add_argument(
        "--protocol",
        choices=("basic", "optproof", "optte"),
        default="optte",
        help="threshold signing protocol",
    )
    parser.add_argument(
        "--wan",
        action="store_true",
        help="use the paper's Figure 1 WAN topology instead of the LAN",
    )
    parser.add_argument(
        "--corrupt",
        type=int,
        default=0,
        metavar="K",
        help="simulate K corrupted servers (paper placement)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=1,
        metavar="B",
        help="order up to B client payloads per agreement instance (1 = off)",
    )
    parser.add_argument(
        "--no-answer-cache",
        action="store_true",
        help="disable the signed-answer cache",
    )
    parser.add_argument(
        "--crypto-executor",
        choices=("serial", "pool"),
        default="serial",
        help="crypto execution plane: inline (serial) or process pool",
    )
    parser.add_argument(
        "--crypto-workers",
        type=int,
        default=4,
        metavar="W",
        help="worker processes for the pooled crypto plane",
    )


def _build_service(args: argparse.Namespace):
    from repro.core.service import ReplicatedNameService
    from repro.sim.machines import lan_setup, paper_setup

    topology = paper_setup(args.n) if args.wan else lan_setup(args.n)
    service = ReplicatedNameService(
        ServiceConfig(
            n=args.n,
            t=args.t,
            signing_protocol=args.protocol,
            batch_size=args.batch_size,
            answer_cache=not args.no_answer_cache,
            crypto_executor=args.crypto_executor,
            crypto_workers=args.crypto_workers,
        ),
        topology=topology,
        zone_text=_load_zone_text(args),
    )
    if args.corrupt:
        service.corrupt_paper_style(args.corrupt)
    return service


def _load_zone_text(args: argparse.Namespace) -> str:
    from repro.core.service import DEFAULT_ZONE

    zone_file = getattr(args, "zone_file", None)
    if zone_file:
        with open(zone_file, "r", encoding="utf-8") as handle:
            return handle.read()
    return DEFAULT_ZONE


def cmd_keygen(args: argparse.Namespace) -> int:
    from repro.core.keytool import generate_deployment, save_replica_keys

    config = ServiceConfig(n=args.n, t=args.t)
    deployment = generate_deployment(
        config, zone_bits=args.bits, use_demo_primes=not args.fresh_primes
    )
    os.makedirs(args.out, exist_ok=True)
    for keys in deployment.replicas:
        path = os.path.join(args.out, f"replica-{keys.index}.keys")
        save_replica_keys(keys, path)
        print(f"wrote {path}")
    key_record = deployment.zone_key_record
    print(
        f"zone key: {deployment.zone_public.modulus.bit_length()}-bit RSA, "
        f"({config.n},{config.t})-shared, key tag {key_record.key_tag()}"
    )
    print("distribute each file to its replica over a secure channel (§4.3)")
    return 0


def cmd_signzone(args: argparse.Namespace) -> int:
    from repro.core.keytool import generate_deployment
    from repro.core.service import local_threshold_signer
    from repro.dns import dnssec
    from repro.dns.zonefile import parse_zone_file, write_zone_file

    config = ServiceConfig(n=args.n, t=args.t)
    deployment = generate_deployment(config, zone_bits=args.bits)
    zone = parse_zone_file(args.zone_file)
    key_record = deployment.zone_key_record
    zone.add_rdata(zone.origin, c.TYPE_KEY, 3600, key_record)
    signer = local_threshold_signer(
        deployment.zone_public, [r.zone_share for r in deployment.replicas]
    )
    count = dnssec.sign_zone_locally(zone, key_record, signer)
    out = args.out or args.zone_file + ".signed"
    write_zone_file(zone, out)
    print(f"signed {count} RRsets with the ({args.n},{args.t})-threshold key")
    print(f"wrote {out}")
    return 0


def cmd_verifyzone(args: argparse.Namespace) -> int:
    from repro.dns import dnssec
    from repro.dns.zonefile import parse_zone_file

    zone = parse_zone_file(args.zone_file)
    key_rrset = dnssec.zone_key_rrset(zone)
    if key_rrset is None:
        print("error: zone has no apex KEY record", file=sys.stderr)
        return 1
    key = key_rrset.rdatas[0]
    count = dnssec.verify_zone(zone, key)  # type: ignore[arg-type]
    print(f"OK: {count} signatures verified against key tag {key.key_tag()}")  # type: ignore[union-attr]
    return 0


def cmd_dig(args: argparse.Namespace) -> int:
    service = _build_service(args)
    rtype = c.type_from_text(args.rtype)
    ops = [service.query(args.name, rtype) for _ in range(max(1, args.repeat))]
    op = ops[-1]
    print(op.response.to_text())
    if len(ops) > 1:
        times = ", ".join(f"{o.latency * 1000:.0f}" for o in ops)
        hits = sum(r.stats["answer_cache_hits"] for r in service.replicas)
        print(f";; query times (ms): {times}; answer-cache hits: {hits}")
    print(
        f";; simulated query time: {op.latency * 1000:.0f} ms; "
        f"signatures verified: {op.verified}"
    )
    return 0 if op.response.rcode == c.RCODE_NOERROR else 1


def cmd_nsupdate(args: argparse.Namespace) -> int:
    service = _build_service(args)
    if args.action == "add":
        if not args.rdata:
            print("error: add needs rdata", file=sys.stderr)
            return 2
        read_op, op, total = service.nsupdate_add(
            args.name, c.type_from_text(args.rtype), args.ttl, " ".join(args.rdata)
        )
    else:
        read_op, op, total = service.nsupdate_delete(args.name)
    print(f"rcode: {c.rcode_to_text(op.response.rcode)}")
    print(
        f"simulated time: {total:.2f} s "
        f"(read {read_op.latency:.2f} + update {op.latency:.2f})"
    )
    print(f"replica states consistent: {service.states_consistent()}")
    return 0 if op.response.rcode == c.RCODE_NOERROR else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from statistics import mean

    from repro.core.service import ReplicatedNameService
    from repro.sim.machines import lan_setup, paper_setup

    label = args.setup
    reads, adds, deletes = [], [], []
    for seed in range(args.repetitions):
        topology = (
            lan_setup(args.n) if label.endswith("*") or not args.wan
            else paper_setup(args.n)
        )
        service = ReplicatedNameService(
            ServiceConfig(
                n=args.n,
                t=args.t,
                signing_protocol=args.protocol,
                batch_size=args.batch_size,
                answer_cache=not args.no_answer_cache,
            ),
            topology=topology,
            seed=seed,
        )
        if args.corrupt:
            service.corrupt_paper_style(args.corrupt)
        reads.append(service.query("www.example.com.", c.TYPE_A).latency)
        _, _, add = service.nsupdate_add(
            "bench.example.com.", c.TYPE_A, 3600, "192.0.2.99"
        )
        _, _, delete = service.nsupdate_delete("bench.example.com.")
        adds.append(add)
        deletes.append(delete)
    print(
        f"(n={args.n}, k={args.corrupt}) {args.protocol}: "
        f"read {mean(reads):.3f} s, add {mean(adds):.2f} s, "
        f"delete {mean(deletes):.2f} s  ({args.repetitions} runs)"
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import SCENARIOS, run_scenario

    try:
        n_text, t_text = args.cluster.split(",")
        cluster = (int(n_text), int(t_text))
    except ValueError:
        print(f"error: --cluster must look like 4,1 (got {args.cluster!r})",
              file=sys.stderr)
        return 2
    if args.scenario == "all":
        names = sorted(SCENARIOS)
    elif args.scenario in SCENARIOS:
        names = [args.scenario]
    else:
        print(
            f"error: unknown scenario {args.scenario!r}; "
            f"choose from {sorted(SCENARIOS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    seeds = list(range(args.seed, args.seed + max(1, args.seeds)))
    failures = 0
    for name in names:
        for seed in seeds:
            result = run_scenario(name, cluster=cluster, seed=seed)
            status = "ok" if result.ok else "FAIL"
            print(
                f"chaos {name} cluster={cluster[0]},{cluster[1]} seed={seed} "
                f"{status} transcript={result.transcript_hash}"
            )
            if args.show_transcript:
                sys.stdout.write(result.transcript)
            if not result.ok:
                failures += 1
                for violation in result.violations:
                    print(f"  {violation}")
                print(
                    "  replay: python -m repro.cli chaos "
                    f"--seed {seed} --scenario {name} "
                    f"--cluster {cluster[0]},{cluster[1]} --show-transcript"
                )
                if args.out:
                    os.makedirs(args.out, exist_ok=True)
                    path = os.path.join(
                        args.out,
                        f"chaos-{name}-{cluster[0]}-{cluster[1]}-{seed}.txt",
                    )
                    with open(path, "w", encoding="utf-8") as handle:
                        handle.write(result.transcript)
                    print(f"  transcript written to {path}")
    if failures:
        print(f"{failures} chaos run(s) failed", file=sys.stderr)
        return 1
    return 0


def cmd_keytrap(args: argparse.Namespace) -> int:
    from repro.chaos import run_keytrap_smoke
    from repro.config import ServiceConfig
    from repro.dns.resolver import ValidationBudget

    try:
        n_text, t_text = args.cluster.split(",")
        cluster = (int(n_text), int(t_text))
    except ValueError:
        print(f"error: --cluster must look like 4,1 (got {args.cluster!r})",
              file=sys.stderr)
        return 2
    defaults = ServiceConfig(n=1, t=0)
    budget = ValidationBudget(
        max_sig_checks=args.max_sig_checks or defaults.resolver_max_sig_checks,
        max_key_trials=args.max_key_trials or defaults.resolver_max_key_trials,
    )
    result = run_keytrap_smoke(
        seeds=max(1, args.seeds),
        base_seed=args.seed,
        budget=budget,
        cluster=cluster,
        liveness=not args.no_liveness,
    )
    for report in result.reports:
        status = "ok" if report.ok else "FAIL"
        print(
            f"keytrap seed={report.seed} {status} "
            f"sig_checks<={report.max_sig_checks}/{budget.max_sig_checks} "
            f"key_trials<={report.max_key_trials}/{budget.max_key_trials} "
            f"benign_verified={report.benign_verified}"
        )
    if not args.no_liveness:
        status = "ok" if result.liveness_ok else "FAIL"
        print(f"keytrap liveness {status}: {result.liveness_detail}")
    if not result.ok:
        for violation in result.violations:
            print(f"  {violation}", file=sys.stderr)
        print(
            "  replay: python -m repro.cli keytrap "
            f"--seed {args.seed} --seeds {args.seeds} "
            f"--cluster {cluster[0]},{cluster[1]}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import baseline as bl
    from repro.lint import mypy_ratchet, report
    from repro.lint.framework import (
        STALE_SUPPRESSION_RULE,
        LintConfig,
        find_repo_root,
        load_rules,
        run_paths_ctx,
        stale_suppression_findings,
    )
    from repro.taint import TAINT_RULES

    # Anchor to the repository root (marker files, src layout) so the
    # command behaves identically from any subdirectory; --root overrides.
    root = Path(args.root).resolve() if args.root else find_repo_root()
    rules = load_rules()
    if args.list_rules:
        from repro.analysis import QUORUM_RULES, RACE_RULES

        print(report.render_rule_catalog(rules))
        for rule_id, (summary, _description) in sorted(TAINT_RULES.items()):
            print(f"{rule_id}  [{'taint':>13}]  {summary}")
        for rule_id, (summary, _description) in sorted(QUORUM_RULES.items()):
            print(f"{rule_id}  [{'quorum':>13}]  {summary}")
        for rule_id, (summary, _description) in sorted(RACE_RULES.items()):
            print(f"{rule_id}  [{'races':>13}]  {summary}")
        print(
            f"{STALE_SUPPRESSION_RULE}  [{'framework':>13}]  "
            "suppression comment no longer shields any finding"
        )
        return 0

    config = LintConfig.from_pyproject(root / "pyproject.toml")
    exit_code = 0

    if args.mypy_strict:
        code, output = mypy_ratchet.check(root)
        print(output)
        exit_code = max(exit_code, code)
        if not args.paths and not (args.check_baseline or args.update_baseline):
            return exit_code

    paths = [Path(p) for p in args.paths] if args.paths else [root / "src" / "repro"]
    findings, contexts = run_paths_ctx(paths, root, config=config)

    active_rules = [rule.rule_id for rule in rules]
    if args.taint:
        from repro.taint import analyze_files as taint_analyze
        from repro.taint.indexer import module_files

        shared_suppressions = {
            path: ctx.suppressions for path, ctx in contexts.items()
        }
        findings.extend(
            taint_analyze(
                module_files(paths, root),
                config=config,
                suppressions=shared_suppressions,
            )
        )
        active_rules.extend(TAINT_RULES)

    if args.quorum or args.races:
        from repro.analysis import (
            QUORUM_RULES,
            RACE_RULES,
            analyze_quorum,
            analyze_races,
        )
        from repro.taint.indexer import ProgramIndex, module_files

        files = module_files(paths, root)
        index = ProgramIndex.build(files)  # shared by both analyzers
        shared_suppressions = {
            path: ctx.suppressions for path, ctx in contexts.items()
        }
        if args.quorum:
            findings.extend(
                analyze_quorum(
                    files,
                    config=config,
                    suppressions=shared_suppressions,
                    index=index,
                )
            )
            active_rules.extend(QUORUM_RULES)
        if args.races:
            findings.extend(
                analyze_races(
                    files,
                    config=config,
                    suppressions=shared_suppressions,
                    index=index,
                )
            )
            active_rules.extend(RACE_RULES)

    # Stale-suppression reporting must run after every producer above has
    # marked the comments it actually used.
    for ctx in contexts.values():
        findings.extend(stale_suppression_findings(ctx, active_rules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    if args.sarif:
        from repro.taint import render_sarif

        catalog = {
            rule.rule_id: (rule.summary, getattr(rule, "description", rule.summary))
            for rule in rules
        }
        catalog.update(TAINT_RULES)
        from repro.analysis import QUORUM_RULES, RACE_RULES

        catalog.update(QUORUM_RULES)
        catalog.update(RACE_RULES)
        catalog[STALE_SUPPRESSION_RULE] = (
            "stale suppression comment",
            "A repro-lint suppression comment that no longer shields any "
            "finding; delete it so the suppression set ratchets down.",
        )
        sarif_path = Path(args.sarif)
        sarif_path.write_text(render_sarif(findings, catalog), encoding="utf-8")
        print(f"SARIF written to {sarif_path}")

    baseline_path = Path(args.baseline) if args.baseline else root / "lint-baseline.json"

    try:
        if args.update_baseline:
            old = bl.load_baseline(baseline_path)
            new = bl.update_baseline(findings, old, allow_growth=args.allow_growth)
            bl.save_baseline(baseline_path, new)
            total = sum(sum(rules.values()) for rules in new.values())
            print(f"baseline written to {baseline_path} ({total} finding(s) tracked)")
            return exit_code
        if args.check_baseline or baseline_path.is_file():
            problems = bl.check_against_baseline(findings, bl.load_baseline(baseline_path))
            if problems:
                print("\n".join(problems), file=sys.stderr)
                return 1
            print(
                f"lint clean: {len(findings)} baselined finding(s), "
                "0 new, 0 stale"
            )
            return exit_code
    except bl.BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.format == "json":
        print(report.render_json(findings))
    else:
        print(report.render_text(findings))
    return max(exit_code, 1 if findings else 0)


def cmd_explore(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.explore import (
        EXPLORE_RULES,
        confirm_races,
        explore_protocol,
        replay_file,
        save_schedule,
    )
    from repro.lint import report
    from repro.taint.sarif import render_sarif

    if args.list_rules:
        for rule_id, (summary, _description) in sorted(EXPLORE_RULES.items()):
            print(f"{rule_id}  [{'explore':>13}]  {summary}")
        return 0

    if args.replay:
        outcome = replay_file(Path(args.replay))
        print(f"replayed {args.replay}")
        print(f"  fingerprint:     {outcome.fingerprint}")
        print(f"  transcript hash: {outcome.transcript_hash}")
        if outcome.problems:
            for problem in outcome.problems:
                print(f"  violation: {problem}")
        else:
            print("  no violation observed")
        print("  reproduced" if outcome.reproduced else "  NOT reproduced")
        return 0 if outcome.reproduced else 1

    try:
        n_str, t_str = args.cluster.split(",")
        n, t = int(n_str), int(t_str)
    except ValueError:
        print(f"error: --cluster must be 'n,t', got {args.cluster!r}", file=sys.stderr)
        return 2

    if args.confirm_races:
        from repro.lint.framework import find_repo_root
        from repro.taint.indexer import module_files

        root = Path(args.root).resolve() if args.root else find_repo_root()
        paths = [Path(p) for p in args.paths] if args.paths else [root / "src" / "repro"]
        files = module_files(paths, root)
        outcomes = confirm_races(
            files,
            max_schedules=args.max_schedules or 5_000,
            deadline_s=args.deadline,
        )
        findings = [o.finding() for o in outcomes]
        if args.format == "json":
            print(report.render_json(findings))
        else:
            if not outcomes:
                print("confirm-races: no Y601-Y604 findings to confirm")
            for o in outcomes:
                f = o.finding()
                print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        if args.sarif:
            Path(args.sarif).write_text(
                render_sarif(findings, EXPLORE_RULES), encoding="utf-8"
            )
            print(f"SARIF written to {args.sarif}")
        return 1 if any(o.status == "confirmed" for o in outcomes) else 0

    if args.protocol is None:
        print("error: --protocol is required (or --replay/--confirm-races/--list-rules)", file=sys.stderr)
        return 2
    try:
        result = explore_protocol(
            args.protocol,
            mode=args.mode or "",
            n=n,
            t=t,
            strategies=args.strategy or None,
            bound=args.bound,
            max_schedules=args.max_schedules,
            max_steps=args.max_steps,
            deadline_s=args.deadline,
            stop_on_first=args.stop_on_first,
            use_dpor=not args.no_dpor,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.out:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        for i, sf in enumerate(result.counterexamples):
            path = out_dir / (
                f"{result.protocol}-{sf.strategy or 'honest'}-{sf.kind}-{i}.schedule.json"
            )
            save_schedule(sf, path)
            print(f"counterexample written to {path}")

    findings = result.findings()
    if args.format == "json":
        payload = result.to_dict()
        payload["findings"] = json.loads(report.render_json(findings))
        print(json.dumps(payload, indent=2))
    else:
        for line in result.summary_lines():
            print(line)
    if args.sarif:
        Path(args.sarif).write_text(
            render_sarif(findings, EXPLORE_RULES), encoding="utf-8"
        )
        print(f"SARIF written to {args.sarif}")
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Secure Distributed DNS tools"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("keygen", help="deal threshold keys for a deployment")
    p.add_argument("-n", type=int, default=4)
    p.add_argument("-t", type=int, default=1)
    p.add_argument("--bits", type=int, default=1024, help="zone key modulus bits")
    p.add_argument("--out", default="keys", help="output directory")
    p.add_argument(
        "--fresh-primes",
        action="store_true",
        help="generate fresh safe primes (slow) instead of the demo pool",
    )
    p.set_defaults(func=cmd_keygen)

    p = sub.add_parser("signzone", help="sign a zone file with a threshold key")
    p.add_argument("zone_file")
    p.add_argument("-n", type=int, default=4)
    p.add_argument("-t", type=int, default=1)
    p.add_argument("--bits", type=int, default=1024)
    p.add_argument("--out", default=None)
    p.set_defaults(func=cmd_signzone)

    p = sub.add_parser("verifyzone", help="verify all SIGs in a signed zone file")
    p.add_argument("zone_file")
    p.set_defaults(func=cmd_verifyzone)

    p = sub.add_parser("dig", help="query a simulated deployment")
    p.add_argument("name")
    p.add_argument("rtype", nargs="?", default="A")
    p.add_argument("--zone-file", default=None)
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="issue the query N times (repeats exercise the answer cache)",
    )
    _add_service_args(p)
    p.set_defaults(func=cmd_dig)

    p = sub.add_parser("nsupdate", help="update a simulated deployment")
    p.add_argument("action", choices=("add", "delete"))
    p.add_argument("name")
    p.add_argument("rtype", nargs="?", default="A")
    p.add_argument("rdata", nargs="*")
    p.add_argument("--ttl", type=int, default=300)
    p.add_argument("--zone-file", default=None)
    _add_service_args(p)
    p.set_defaults(func=cmd_nsupdate)

    p = sub.add_parser(
        "chaos",
        help="run seed-replayable Byzantine chaos scenarios and check G1/G2/G3",
    )
    p.add_argument("--seed", type=int, default=0, help="first (or only) seed")
    p.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="K",
        help="run K consecutive seeds starting at --seed",
    )
    p.add_argument(
        "--scenario",
        default="mixed",
        help="scenario name or 'all' (see repro.chaos.SCENARIOS)",
    )
    p.add_argument(
        "--cluster",
        default="4,1",
        metavar="N,T",
        help="cluster size as n,t (e.g. 4,1 or 7,2)",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write failing-run transcripts into DIR",
    )
    p.add_argument(
        "--show-transcript",
        action="store_true",
        help="print the full deterministic transcript of every run",
    )
    p.set_defaults(func=cmd_chaos)

    p = sub.add_parser(
        "keytrap",
        help="KeyTrap adversarial-zone smoke: budget caps + replica liveness",
    )
    p.add_argument("--seed", type=int, default=0, help="first (or only) seed")
    p.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="K",
        help="run K consecutive seeds starting at --seed",
    )
    p.add_argument(
        "--cluster",
        default="4,1",
        metavar="N,T",
        help="cluster for the liveness probe (e.g. 4,1)",
    )
    p.add_argument(
        "--max-sig-checks",
        type=int,
        default=None,
        help="override the per-response signature-check budget",
    )
    p.add_argument(
        "--max-key-trials",
        type=int,
        default=None,
        help="override the per-response key-trial budget",
    )
    p.add_argument(
        "--no-liveness",
        action="store_true",
        help="skip the replicated-service liveness probe",
    )
    p.set_defaults(func=cmd_keytrap)

    p = sub.add_parser("bench", help="run one Table 2 cell")
    p.add_argument("--setup", default="(4,0)")
    p.add_argument("--repetitions", type=int, default=3)
    _add_service_args(p)
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "lint",
        help="run the determinism/protocol-safety analyzer (DESIGN.md §5c)",
    )
    p.add_argument(
        "paths", nargs="*", help="files/directories to analyze (default: src/repro)"
    )
    p.add_argument(
        "--root",
        default=None,
        help="repository root (default: auto-discovered from marker files)",
    )
    p.add_argument(
        "--taint",
        action="store_true",
        help="also run the interprocedural Byzantine-taint analysis (T401-T408)",
    )
    p.add_argument(
        "--quorum",
        action="store_true",
        help="also run symbolic quorum-arithmetic verification (Q501-Q505): "
        "every n/t threshold must match a declared obligation proven over "
        "all admissible (n, t) with n >= 3t+1",
    )
    p.add_argument(
        "--races",
        action="store_true",
        help="also run asyncio yield-point atomicity checking (Y601-Y604) "
        "over dispatcher-reachable async handlers",
    )
    p.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="write findings as a SARIF 2.1.0 log to FILE",
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline file (default: <root>/lint-baseline.json)",
    )
    p.add_argument(
        "--check-baseline",
        action="store_true",
        help="fail on findings not covered by the baseline and on stale entries",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings (ratchets down only)",
    )
    p.add_argument(
        "--allow-growth",
        action="store_true",
        help="let --update-baseline raise per-file/per-rule counts",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    p.add_argument(
        "--mypy-strict",
        action="store_true",
        help="check the per-module mypy strictness ratchet",
    )
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "explore",
        help="systematic interleaving exploration (DPOR model checking, DESIGN.md §5j)",
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files to analyze with --confirm-races (default: src/repro)",
    )
    p.add_argument(
        "--protocol",
        choices=["rbc", "aba", "abc", "e2e"],
        default=None,
        help="which protocol layer to explore",
    )
    p.add_argument(
        "--mode",
        choices=["full", "digest", "erasure"],
        default=None,
        help="dissemination mode (rbc/abc/e2e; default: full for rbc, digest otherwise)",
    )
    p.add_argument(
        "--cluster",
        default="4,1",
        metavar="N,T",
        help="cluster size as 'n,t' (default: 4,1)",
    )
    p.add_argument(
        "--strategy",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to this Byzantine strategy (repeatable; default: all)",
    )
    p.add_argument(
        "--bound",
        type=int,
        default=None,
        help="delay bound: max deviations from the default schedule "
        "(default: unbounded; required for --protocol e2e)",
    )
    p.add_argument(
        "--max-schedules",
        type=int,
        default=None,
        help="stop after this many explored schedules",
    )
    p.add_argument(
        "--max-steps", type=int, default=None, help="stop after this many executed steps"
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per strategy",
    )
    p.add_argument(
        "--stop-on-first",
        action="store_true",
        help="stop at the first violation instead of enumerating all",
    )
    p.add_argument(
        "--no-dpor",
        action="store_true",
        help="disable partial-order reduction (naive enumeration, for comparison)",
    )
    p.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay a counterexample schedule file and exit",
    )
    p.add_argument(
        "--confirm-races",
        action="store_true",
        help="dynamically confirm static Y601-Y604 findings (X702/X703)",
    )
    p.add_argument(
        "--root",
        default=None,
        help="repository root for --confirm-races (default: auto-discovered)",
    )
    p.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="write counterexample schedule files to DIR",
    )
    p.add_argument(
        "--sarif",
        default=None,
        metavar="FILE",
        help="write findings as a SARIF 2.1.0 log to FILE",
    )
    p.add_argument("--format", choices=["text", "json"], default="text")
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the exploration rule catalog and exit",
    )
    p.set_defaults(func=cmd_explore)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
