"""Message types of the broadcast/agreement protocols.

Messages are immutable dataclasses.  Transports in this repository are
in-process (deterministic simulator or asyncio bus), so messages travel
as objects; the DNS payloads they carry have their own RFC wire format.
Every message names its protocol instance (``sid`` — session id), so one
pair of nodes can run many protocol instances over one link.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.crypto.protocols import SigningMessage
from repro.crypto.shoup import SignatureShare


# --------------------------------------------------------------------------
# Request batching (SINTRA-style payload amortization)
# --------------------------------------------------------------------------

#: Marker distinguishing a batch payload from a single client request.
#: Single-request payloads start with a 4-byte client node id; ids anywhere
#: near 0xFF424154 ("\xffBAT") would require ~4.2 billion simulated nodes,
#: so the prefix cannot collide with a legitimate request payload.
BATCH_MAGIC = b"\xffBATCH1\x00"

#: Batch frames may nest (a new leader re-batches whole pending payloads,
#: including gateway batch frames, on epoch change); decoding recursion is
#: capped so a Byzantine frame cannot nest arbitrarily deep.
MAX_BATCH_NESTING = 8


def encode_batch(payloads: List[bytes]) -> bytes:
    """Frame a list of request payloads as one length-prefixed batch.

    Layout: ``MAGIC || u32 count || (u32 len || payload)*`` — every replica
    decodes the same ordered list, so batch execution stays deterministic.
    """
    out = bytearray(BATCH_MAGIC)
    out += struct.pack(">I", len(payloads))
    for payload in payloads:
        out += struct.pack(">I", len(payload))
        out += payload
    return bytes(out)


def is_batch_payload(payload: bytes) -> bool:
    return payload.startswith(BATCH_MAGIC)


def decode_batch(payload: bytes) -> List[bytes]:
    """Decode a batch payload; malformed batches decode to ``[]``.

    Decoding is strict and total: a Byzantine gateway can broadcast a
    truncated or over-long batch, and every honest replica must reach the
    same verdict from the same bytes — here, "drop the whole batch".
    """
    if not payload.startswith(BATCH_MAGIC):
        return []
    offset = len(BATCH_MAGIC)
    if len(payload) < offset + 4:
        return []
    (count,) = struct.unpack_from(">I", payload, offset)
    offset += 4
    entries: List[bytes] = []
    for _ in range(count):
        if len(payload) < offset + 4:
            return []
        (length,) = struct.unpack_from(">I", payload, offset)
        offset += 4
        if len(payload) < offset + length:
            return []
        entries.append(payload[offset : offset + length])
        offset += length
    if offset != len(payload):
        return []  # trailing garbage
    return entries


# --------------------------------------------------------------------------
# Reliable broadcast (Bracha)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RbcSend:
    sid: str
    payload: bytes


@dataclass(frozen=True)
class RbcEcho:
    sid: str
    payload: bytes


@dataclass(frozen=True)
class RbcReady:
    sid: str
    digest: bytes


#: One Merkle proof step per tree level: (sibling digest, sibling_is_right).
MerkleProof = Tuple[Tuple[bytes, bool], ...]


@dataclass(frozen=True)
class RbcEchoDigest:
    """Digest-only echo vote (digest/erasure modes): 32 bytes, not |m|."""

    sid: str
    digest: bytes


@dataclass(frozen=True)
class RbcVal:
    """Erasure dispersal: the sender ships fragment ``index`` to replica
    ``index`` with its Merkle proof against ``root`` (AVID-M)."""

    sid: str
    root: bytes
    index: int
    fragment: bytes
    proof: MerkleProof


@dataclass(frozen=True)
class RbcFrag:
    """A replica forwarding a proof-carrying fragment (the erasure-mode
    echo: one |m|/k fragment per link instead of the whole payload)."""

    sid: str
    root: bytes
    index: int
    fragment: bytes
    proof: MerkleProof


@dataclass(frozen=True)
class RbcPull:
    """Request the payload (or fragments) behind a quorum-agreed digest."""

    sid: str
    digest: bytes


@dataclass(frozen=True)
class RbcPayload:
    """Pull response: the full payload for a previously requested digest."""

    sid: str
    payload: bytes


# --------------------------------------------------------------------------
# Common coin (threshold-signature based)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CoinShare:
    sid: str
    round: int
    share: SignatureShare


# --------------------------------------------------------------------------
# Binary agreement (randomized, coin-based)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AbaEst:
    sid: str
    round: int
    value: int  # 0 or 1


@dataclass(frozen=True)
class AbaAux:
    sid: str
    round: int
    value: int


@dataclass(frozen=True)
class AbaDecided:
    sid: str
    value: int


# --------------------------------------------------------------------------
# Optimistic atomic broadcast
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AbcInitiate:
    """A request enters the system: sent to all replicas (incl. the leader)."""

    request_id: str
    payload: bytes


@dataclass(frozen=True)
class AbcOrder:
    """Leader's fast-path sequencing of one request."""

    epoch: int
    seq: int
    request_id: str
    payload: bytes


@dataclass(frozen=True)
class AbcPrepare:
    """First-phase echo: replica ``signer`` vouches for (epoch, seq, digest)."""

    epoch: int
    seq: int
    digest: bytes
    signer: int
    signature: bytes


@dataclass(frozen=True)
class AbcCommit:
    """Second-phase echo, sent only by replicas holding a prepare certificate."""

    epoch: int
    seq: int
    digest: bytes
    signer: int
    signature: bytes


@dataclass(frozen=True)
class PrepareCertificate:
    """n-t signed prepares — transferable proof that (seq, digest) is safe."""

    epoch: int
    seq: int
    digest: bytes
    payload: bytes
    signatures: Tuple[Tuple[int, bytes], ...]  # (signer, signature) pairs


@dataclass(frozen=True)
class AbcComplain:
    """Leader-suspicion vote for the current epoch."""

    epoch: int
    complainer: int


@dataclass(frozen=True)
class AbcEpochFinal:
    """A replica's closing state for an epoch (sent during fall-back).

    Carries every prepare certificate the replica holds at or above its
    delivered watermark, plus its undelivered pending requests so the new
    leader can re-propose them.
    """

    epoch: int
    sender: int
    delivered_seq: int
    certificates: Tuple[PrepareCertificate, ...]
    pending: Tuple[Tuple[str, bytes], ...]  # (request_id, payload)


@dataclass(frozen=True)
class AbcNewEpoch:
    """New leader's epoch-start message: the adopted certified prefix.

    ``certificates`` carries the signed EPOCH_FINAL messages themselves
    (``(final, signature)`` pairs) so every validator can re-verify the
    n-t closing states instead of trusting the new leader's summary.
    """

    epoch: int  # the NEW epoch
    certificates: Tuple[Tuple[AbcEpochFinal, bytes], ...]
    start_seq: int


@dataclass(frozen=True)
class AbcPull:
    """Request the payload behind a digest-mode ORDER we could not match."""

    request_id: str


@dataclass(frozen=True)
class AbcPayload:
    """Pull response: the full request payload for ``request_id``."""

    request_id: str
    payload: bytes


@dataclass(frozen=True)
class AbcFrag:
    """Erasure-mode request introduction: one Reed-Solomon fragment of the
    payload behind ``request_id``, Merkle-proven against ``root``.

    Replaces the full-payload :class:`AbcInitiate` fan-out: the gateway
    ships fragment ``i`` to replica ``i`` (|m|/k per link), each replica
    forwards its own fragment once, and any ``n - 2t`` fragments
    reconstruct the payload.
    """

    request_id: str
    root: bytes
    index: int
    fragment: bytes
    proof: MerkleProof


@dataclass(frozen=True)
class WrapperSigning:
    """Envelope for threshold-signing traffic between Wrapper modules.

    Signing messages are point-to-point (§3.3), outside atomic broadcast.
    """

    inner: SigningMessage


@dataclass(frozen=True)
class ClientRequest:
    """Client-to-replica DNS request (wire bytes, possibly TSIG-signed)."""

    request_id: str
    wire: bytes


@dataclass(frozen=True)
class ClientResponse:
    """Replica-to-client DNS response."""

    request_id: str
    wire: bytes
    replica: int
