"""Message types of the broadcast/agreement protocols.

Messages are immutable dataclasses.  Transports in this repository are
in-process (deterministic simulator or asyncio bus), so messages travel
as objects; the DNS payloads they carry have their own RFC wire format.
Every message names its protocol instance (``sid`` — session id), so one
pair of nodes can run many protocol instances over one link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.crypto.protocols import SigningMessage
from repro.crypto.shoup import SignatureShare


# --------------------------------------------------------------------------
# Reliable broadcast (Bracha)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RbcSend:
    sid: str
    payload: bytes


@dataclass(frozen=True)
class RbcEcho:
    sid: str
    payload: bytes


@dataclass(frozen=True)
class RbcReady:
    sid: str
    digest: bytes


# --------------------------------------------------------------------------
# Common coin (threshold-signature based)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CoinShare:
    sid: str
    round: int
    share: SignatureShare


# --------------------------------------------------------------------------
# Binary agreement (randomized, coin-based)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AbaEst:
    sid: str
    round: int
    value: int  # 0 or 1


@dataclass(frozen=True)
class AbaAux:
    sid: str
    round: int
    value: int


@dataclass(frozen=True)
class AbaDecided:
    sid: str
    value: int


# --------------------------------------------------------------------------
# Optimistic atomic broadcast
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AbcInitiate:
    """A request enters the system: sent to all replicas (incl. the leader)."""

    request_id: str
    payload: bytes


@dataclass(frozen=True)
class AbcOrder:
    """Leader's fast-path sequencing of one request."""

    epoch: int
    seq: int
    request_id: str
    payload: bytes


@dataclass(frozen=True)
class AbcPrepare:
    """First-phase echo: replica ``signer`` vouches for (epoch, seq, digest)."""

    epoch: int
    seq: int
    digest: bytes
    signer: int
    signature: bytes


@dataclass(frozen=True)
class AbcCommit:
    """Second-phase echo, sent only by replicas holding a prepare certificate."""

    epoch: int
    seq: int
    digest: bytes
    signer: int
    signature: bytes


@dataclass(frozen=True)
class PrepareCertificate:
    """2t+1 signed prepares — transferable proof that (seq, digest) is safe."""

    epoch: int
    seq: int
    digest: bytes
    payload: bytes
    signatures: Tuple[Tuple[int, bytes], ...]  # (signer, signature) pairs


@dataclass(frozen=True)
class AbcComplain:
    """Leader-suspicion vote for the current epoch."""

    epoch: int
    complainer: int


@dataclass(frozen=True)
class AbcEpochFinal:
    """A replica's closing state for an epoch (sent during fall-back).

    Carries every prepare certificate the replica holds at or above its
    delivered watermark, plus its undelivered pending requests so the new
    leader can re-propose them.
    """

    epoch: int
    sender: int
    delivered_seq: int
    certificates: Tuple[PrepareCertificate, ...]
    pending: Tuple[Tuple[str, bytes], ...]  # (request_id, payload)


@dataclass(frozen=True)
class AbcNewEpoch:
    """New leader's epoch-start message: the adopted certified prefix."""

    epoch: int  # the NEW epoch
    certificates: Tuple[PrepareCertificate, ...]
    start_seq: int


@dataclass(frozen=True)
class WrapperSigning:
    """Envelope for threshold-signing traffic between Wrapper modules.

    Signing messages are point-to-point (§3.3), outside atomic broadcast.
    """

    inner: SigningMessage


@dataclass(frozen=True)
class ClientRequest:
    """Client-to-replica DNS request (wire bytes, possibly TSIG-signed)."""

    request_id: str
    wire: bytes


@dataclass(frozen=True)
class ClientResponse:
    """Replica-to-client DNS response."""

    request_id: str
    wire: bytes
    replica: int
