"""Bracha reliable broadcast (the classic asynchronous BFT primitive).

Guarantees that if any honest replica delivers a payload for a session,
every honest replica eventually delivers the *same* payload — even if the
broadcaster is Byzantine.  Used by the fall-back path of the atomic
broadcast and available as a building block in its own right (SINTRA
exposed the same primitive).

Protocol (n > 3t):

1. broadcaster sends ``SEND(m)`` to all;
2. on first ``SEND(m)``: broadcast ``ECHO(m)``;
3. on ``2t+1`` matching ``ECHO``s (or ``t+1`` ``READY``s): broadcast
   ``READY(digest(m))``;
4. on ``2t+1`` matching ``READY``s: deliver ``m``.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.broadcast.messages import RbcEcho, RbcReady, RbcSend
from repro.errors import ConfigError

Outgoing = Tuple[int, object]
BROADCAST = -1


def _digest(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()


class RbcInstance:
    """State of one reliable-broadcast session at one replica.

    Resource bound (KeyTrap class): an honest replica echoes exactly one
    payload and readies exactly one digest per session, so each sender is
    allowed to introduce at most one echo digest and one ready digest —
    a second distinct digest from the same sender is equivocation and is
    ignored outright.  That caps tracked digests at ``n`` per vote type
    per instance without any first-come global limit a flooder could
    exhaust before honest votes arrive.
    """

    def __init__(self, n: int, t: int, me: int, sid: str) -> None:
        self.n = n
        self.t = t
        self.me = me
        self.sid = sid
        self.payload: Optional[bytes] = None
        self.delivered: Optional[bytes] = None
        self._echoes: Dict[bytes, Set[int]] = {}
        self._readies: Dict[bytes, Set[int]] = {}
        self._payload_by_digest: Dict[bytes, bytes] = {}
        self._echo_digest: Dict[int, bytes] = {}   # sender -> echoed digest
        self._ready_digest: Dict[int, bytes] = {}  # sender -> readied digest
        self._sent_echo = False
        self._sent_ready = False

    def broadcast(self, payload: bytes) -> List[Outgoing]:
        """Called at the broadcaster to start the session."""
        return [(BROADCAST, RbcSend(self.sid, payload))]

    def on_message(self, sender: int, msg: object) -> List[Outgoing]:
        out: List[Outgoing] = []
        if isinstance(msg, RbcSend):
            out.extend(self._on_send(sender, msg))
        elif isinstance(msg, RbcEcho):
            out.extend(self._on_echo(sender, msg))
        elif isinstance(msg, RbcReady):
            out.extend(self._on_ready(sender, msg))
        return out

    def _on_send(self, sender: int, msg: RbcSend) -> List[Outgoing]:
        if self._sent_echo:
            return []
        self._sent_echo = True
        # Bounded: guarded by _sent_echo — at most one store per instance.
        # repro-lint: disable=C304
        self._payload_by_digest[_digest(msg.payload)] = msg.payload
        echo = RbcEcho(self.sid, msg.payload)
        # Echo to everyone, then process our own echo locally.
        return [(BROADCAST, echo)] + self._on_echo(self.me, echo)

    def _on_echo(self, sender: int, msg: RbcEcho) -> List[Outgoing]:
        digest = _digest(msg.payload)
        # One echo digest per sender: a second distinct digest from the
        # same sender is equivocation, so its vote (and payload) is
        # dropped.  Tracked state is thereby ≤ n digests per instance.
        prev = self._echo_digest.get(sender)
        if prev is not None and prev != digest:
            return []
        self._echo_digest[sender] = digest
        self._payload_by_digest[digest] = msg.payload
        voters = self._echoes.setdefault(digest, set())
        if sender in voters:
            return []
        voters.add(sender)
        # Bracha's echo quorum must pairwise-intersect in an honest
        # replica for *every* n >= 3t+1: that is n-t (2*(n-t) - n =
        # n - 2t >= t+1), not 2t+1, which only intersects at n == 3t+1.
        if len(voters) >= self.n - self.t and not self._sent_ready:
            return self._send_ready(digest)
        return []

    def _on_ready(self, sender: int, msg: RbcReady) -> List[Outgoing]:
        # One ready digest per sender (honest replicas ready exactly one);
        # equivocating readies are dropped, bounding tracked digests at n.
        prev = self._ready_digest.get(sender)
        if prev is not None and prev != msg.digest:
            return []
        self._ready_digest[sender] = msg.digest
        # Bounded: the per-sender equivocation guard above admits at most
        # one digest per sender, so _readies holds ≤ n keys.
        # repro-lint: disable=T404
        voters = self._readies.setdefault(msg.digest, set())
        if sender in voters:
            return []
        voters.add(sender)
        out: List[Outgoing] = []
        if len(voters) >= self.t + 1 and not self._sent_ready:
            out.extend(self._send_ready(msg.digest))
        if (
            len(self._readies.get(msg.digest, ())) >= 2 * self.t + 1
            and self.delivered is None
            and msg.digest in self._payload_by_digest
        ):
            self.delivered = self._payload_by_digest[msg.digest]
        return out

    def _send_ready(self, digest: bytes) -> List[Outgoing]:
        self._sent_ready = True
        ready = RbcReady(self.sid, digest)
        out: List[Outgoing] = [(BROADCAST, ready)]
        out.extend(self._on_ready(self.me, ready))
        return out


class ReliableBroadcast:
    """Session multiplexer: one per replica, any number of concurrent sids."""

    def __init__(
        self,
        n: int,
        t: int,
        me: int,
        deliver: Callable[[str, bytes], None],
    ) -> None:
        if n <= 3 * t:
            raise ConfigError("reliable broadcast requires n > 3t")
        self.n = n
        self.t = t
        self.me = me
        self._deliver = deliver
        self._instances: Dict[str, RbcInstance] = {}

    def _instance(self, sid: str) -> RbcInstance:
        if sid not in self._instances:
            self._instances[sid] = RbcInstance(self.n, self.t, self.me, sid)
        return self._instances[sid]

    def broadcast(self, sid: str, payload: bytes) -> List[Outgoing]:
        instance = self._instance(sid)
        out = instance.broadcast(payload)
        # The broadcaster also processes its own SEND.
        out.extend(self.on_message(self.me, RbcSend(sid, payload)))
        return out

    def on_message(self, sender: int, msg: object) -> List[Outgoing]:
        sid = getattr(msg, "sid", None)
        if sid is None:
            return []
        instance = self._instance(sid)
        already = instance.delivered is not None
        out = instance.on_message(sender, msg)
        if instance.delivered is not None and not already:
            self._deliver(sid, instance.delivered)
        return out

    def delivered(self, sid: str) -> Optional[bytes]:
        instance = self._instances.get(sid)
        return instance.delivered if instance else None
