"""Bracha reliable broadcast with digest votes and erasure dissemination.

Guarantees that if any honest replica delivers a payload for a session,
every honest replica eventually delivers the *same* payload — even if the
broadcaster is Byzantine.  Used by the fall-back path of the atomic
broadcast and available as a building block in its own right (SINTRA
exposed the same primitive).

Three dissemination modes (DESIGN.md §5i), selected per multiplexer:

``full``
    The classic textbook shape: ``SEND(m)`` to all, ``ECHO(m)`` carries
    the whole payload all-to-all — O(n²·|m|) network traffic.  Kept as
    the measured baseline.
``digest`` (default)
    ``SEND(m)`` ships the payload once; ``ECHO``/``READY`` are 32-byte
    digest votes.  A replica that reaches the ready quorum without the
    payload (Byzantine sender withheld its SEND) *pulls* it from an echo
    voter, with a retry/timeout fallback cycling through candidates —
    per-replica vote traffic drops from O(n·|m|) to O(n) hashes.
``erasure``
    AVID-M dispersal: the sender Reed-Solomon-encodes the payload into
    ``n`` fragments (any ``k = n - 2t`` reconstruct), Merkle-proves each
    against a fragment-tree root, and ships fragment ``i`` to replica
    ``i`` only.  Each replica forwards its own proof-valid fragment once
    (the erasure echo, |m|/k per link), votes on the *root*, and
    reconstructs from any ``k`` stored fragments.  A reconstruction is
    re-encoded and checked against the root, so an inconsistently
    encoded batch is rejected identically everywhere.  No link ever
    carries the whole payload.

Vote quorums are shared across modes (n > 3t):

1. on the first valid payload introduction: echo (vote) once;
2. on ``n - t`` matching echo votes (or ``t + 1`` ``READY``\\ s):
   broadcast ``READY(digest)``;
3. on ``2t + 1`` matching ``READY``\\ s: deliver once the payload is
   present (pulling or reconstructing it if not).
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.broadcast.messages import (
    MerkleProof,
    RbcEcho,
    RbcEchoDigest,
    RbcFrag,
    RbcPayload,
    RbcPull,
    RbcReady,
    RbcSend,
    RbcVal,
)
from repro.crypto.merkle import merkle_proof, merkle_root, merkle_verify
from repro.errors import ConfigError
from repro.util.erasure import ErasureError, rs_encode, rs_decode

Outgoing = Tuple[int, object]
BROADCAST = -1

#: Dissemination modes accepted by :class:`ReliableBroadcast`.
RBC_MODES = ("full", "digest", "erasure")

#: A replica answers at most this many pulls per requester per session —
#: enough to survive adversarial duplication, bounded against spam.
MAX_PULL_SERVES = 3

#: Pull retries stop after cycling the candidate list this many times;
#: the final round falls back to pulling from every candidate at once,
#: so delivery needs only one honest echo voter (>= t+1 of them exist).
MAX_PULL_ROUNDS = 3

#: Seconds between staged pull retries (when a scheduler is wired in).
PULL_RETRY_TIMEOUT = 0.25


def _digest(payload: bytes) -> bytes:
    return hashlib.sha256(payload).digest()


class RbcInstance:
    """State of one reliable-broadcast session at one replica.

    Resource bound (KeyTrap class): an honest replica votes for exactly
    one digest per vote type per session, so each sender may introduce at
    most one echo digest and one ready digest — a second distinct digest
    from the same sender is equivocation and is ignored outright.  That
    caps tracked digests at ``n`` per vote type per instance, and (in
    erasure mode) tracked fragment groups at ``n`` roots of at most ``n``
    index slots each, without any first-come global limit a flooder could
    exhaust before honest votes arrive.
    """

    def __init__(self, n: int, t: int, me: int, sid: str, mode: str = "digest") -> None:
        self.n = n
        self.t = t
        self.me = me
        self.sid = sid
        self.mode = mode
        self.k = n - 2 * t  # erasure reconstruction threshold
        self.delivered: Optional[bytes] = None
        #: Digest (or fragment root) this replica wants to pull, set when
        #: the ready quorum formed before the payload arrived.  The
        #: multiplexer owns the retry schedule.
        self.want_pull: Optional[bytes] = None
        self.pull_active = False
        self.pull_attempt = 0
        self._echoes: Dict[bytes, Set[int]] = {}
        self._readies: Dict[bytes, Set[int]] = {}
        self._payload_by_digest: Dict[bytes, bytes] = {}
        self._echo_digest: Dict[int, bytes] = {}   # sender -> echoed digest
        self._ready_digest: Dict[int, bytes] = {}  # sender -> readied digest
        #: root -> {fragment index -> (fragment, proof)}; bounded to the
        #: <= n roots admitted by the per-sender echo guard.
        self._frags: Dict[bytes, Dict[int, Tuple[bytes, MerkleProof]]] = {}
        #: Roots whose reconstruction failed the re-encode check: the
        #: sender encoded inconsistently, so no honest replica delivers.
        self._bad_roots: Set[bytes] = set()
        self._pull_served: Dict[int, int] = {}
        self._sent_echo = False
        self._sent_ready = False

    # -- sender side ----------------------------------------------------------

    def start(self, payload: bytes) -> List[Outgoing]:
        """Full/digest modes: ship the payload once via SEND."""
        return [(BROADCAST, RbcSend(self.sid, payload))]

    def disperse(self, payload: bytes) -> List[Outgoing]:
        """Erasure mode: one proof-carrying fragment per replica."""
        frags = rs_encode(payload, self.k, self.n)
        root = merkle_root(frags)
        self._payload_by_digest[root] = payload  # sender serves pulls
        return [
            (i, RbcVal(self.sid, root, i, frags[i], merkle_proof(frags, i)))
            for i in range(self.n)
        ]

    # -- dispatch -------------------------------------------------------------

    def on_message(self, sender: int, msg: object) -> List[Outgoing]:
        out: List[Outgoing] = []
        if isinstance(msg, RbcSend):
            out.extend(self._on_send(sender, msg))
        elif isinstance(msg, RbcEcho):
            out.extend(self._on_echo(sender, msg))
        elif isinstance(msg, RbcEchoDigest):
            out.extend(self._on_echo_digest(sender, msg))
        elif isinstance(msg, RbcVal):
            out.extend(self._on_val(sender, msg))
        elif isinstance(msg, RbcFrag):
            out.extend(self._on_frag(sender, msg))
        elif isinstance(msg, RbcReady):
            out.extend(self._on_ready(sender, msg))
        elif isinstance(msg, RbcPull):
            out.extend(self._on_pull(sender, msg))
        elif isinstance(msg, RbcPayload):
            out.extend(self._on_payload(sender, msg))
        return out

    # -- payload introduction -------------------------------------------------

    def _on_send(self, sender: int, msg: RbcSend) -> List[Outgoing]:
        if self._sent_echo:
            return []
        self._sent_echo = True
        digest = _digest(msg.payload)
        # Bounded: guarded by _sent_echo — at most one store per instance.
        # repro-lint: disable=C304
        self._payload_by_digest[digest] = msg.payload
        if self.mode == "full":
            echo = RbcEcho(self.sid, msg.payload)
            return [(BROADCAST, echo)] + self._on_echo(self.me, echo)
        vote = RbcEchoDigest(self.sid, digest)
        return [(BROADCAST, vote)] + self._count_echo(self.me, digest)

    def _on_echo(self, sender: int, msg: RbcEcho) -> List[Outgoing]:
        digest = _digest(msg.payload)
        prev = self._echo_digest.get(sender)
        if prev is not None and prev != digest:
            return []  # equivocating echo: vote and payload dropped
        # Bounded: the per-sender guard above admits one digest per
        # sender, so at most n payloads are retained per instance.
        # repro-lint: disable=C304
        self._payload_by_digest[digest] = msg.payload
        return self._count_echo(sender, digest)

    def _on_echo_digest(self, sender: int, msg: RbcEchoDigest) -> List[Outgoing]:
        return self._count_echo(sender, msg.digest)

    def _on_val(self, sender: int, msg: RbcVal) -> List[Outgoing]:
        if self._sent_echo:
            return []
        if not 0 <= msg.index < self.n:  # repro-quorum: identity-bound
            return []
        if msg.index != self.me:
            return []  # dispersal addresses fragment i to replica i
        if not merkle_verify(msg.root, msg.fragment, msg.proof):
            return []
        self._sent_echo = True
        frag = RbcFrag(self.sid, msg.root, msg.index, msg.fragment, msg.proof)
        return [(BROADCAST, frag)] + self._on_frag(self.me, frag)

    def _on_frag(self, sender: int, msg: RbcFrag) -> List[Outgoing]:
        if not 0 <= msg.index < self.n:  # repro-quorum: identity-bound
            return []
        if msg.root in self._bad_roots:
            return []
        if not merkle_verify(msg.root, msg.fragment, msg.proof):
            return []
        out = self._count_echo(sender, msg.root)
        if self._echo_digest.get(sender) != msg.root:
            return out  # equivocating sender: fragment dropped with vote
        # Bounded: one root per sender (guard above) caps _frags at n
        # groups; the index identity bound caps each group at n slots.
        group = self._frags.setdefault(msg.root, {})
        if msg.index not in group:
            group[msg.index] = (msg.fragment, msg.proof)
        # A replica the sender skipped (withheld VAL) adopts the root once
        # t+1 distinct replicas vouch proof-valid fragments for it — at
        # least one honest — and pulls the missing fragments early.
        if (
            len(self._echoes.get(msg.root, ())) >= self.t + 1  # repro-quorum: amplify
            and not self._sent_echo
            and self.want_pull is None
            and self.delivered is None
        ):
            self.want_pull = msg.root
        self._maybe_complete(msg.root)
        return out

    # -- vote counting --------------------------------------------------------

    def _count_echo(self, sender: int, digest: bytes) -> List[Outgoing]:
        prev = self._echo_digest.get(sender)
        if prev is not None and prev != digest:
            return []  # one echo digest per sender (equivocation guard)
        self._echo_digest[sender] = digest
        # Bounded: the per-sender equivocation guard above admits at most
        # one digest per sender, so _echoes holds <= n keys per instance.
        # repro-lint: disable=T404
        voters = self._echoes.setdefault(digest, set())
        if sender in voters:
            return []
        voters.add(sender)
        # Bracha's echo quorum must pairwise-intersect in an honest
        # replica for *every* n >= 3t+1: that is n-t (2*(n-t) - n =
        # n - 2t >= t+1), not 2t+1, which only intersects at n == 3t+1.
        if len(voters) >= self.n - self.t and not self._sent_ready:  # repro-quorum: intersect
            return self._send_ready(digest)
        return []

    def _on_ready(self, sender: int, msg: RbcReady) -> List[Outgoing]:
        # One ready digest per sender (honest replicas ready exactly one);
        # equivocating readies are dropped, bounding tracked digests at n.
        prev = self._ready_digest.get(sender)
        if prev is not None and prev != msg.digest:
            return []
        self._ready_digest[sender] = msg.digest
        # Bounded: the per-sender equivocation guard above admits at most
        # one digest per sender, so _readies holds <= n keys.
        # repro-lint: disable=T404
        voters = self._readies.setdefault(msg.digest, set())
        if sender in voters:
            return []
        voters.add(sender)
        out: List[Outgoing] = []
        if len(voters) >= self.t + 1 and not self._sent_ready:
            out.extend(self._send_ready(msg.digest))
        self._maybe_complete(msg.digest)
        return out

    def _send_ready(self, digest: bytes) -> List[Outgoing]:
        self._sent_ready = True
        ready = RbcReady(self.sid, digest)
        out: List[Outgoing] = [(BROADCAST, ready)]
        out.extend(self._on_ready(self.me, ready))
        return out

    def _ready_quorum(self, digest: bytes) -> bool:
        # 2t+1 readies guarantee t+1 honest ones, and t+1 honest readies
        # block any conflicting digest from ever reaching its own quorum.
        return len(self._readies.get(digest, ())) >= 2 * self.t + 1  # repro-quorum: honest-majority

    # -- delivery / reconstruction / pull -------------------------------------

    def _maybe_complete(self, digest: bytes) -> None:
        """Deliver once the ready quorum holds and the payload is known."""
        if self.delivered is not None or digest in self._bad_roots:
            return
        if not self._ready_quorum(digest):
            return
        payload = self._payload_by_digest.get(digest)
        if payload is None and digest in self._frags:
            payload = self._reconstruct(digest)
        if payload is not None:
            self.delivered = payload
            self.want_pull = None
            return
        if self.want_pull is None:
            self.want_pull = digest

    def _reconstruct(self, root: bytes) -> Optional[bytes]:
        """Erasure decode + AVID-M consistency check for one root."""
        group = self._frags.get(root, {})
        if len(group) < self.n - 2 * self.t:  # repro-quorum: reconstruct
            return None
        try:
            payload = rs_decode(
                {i: frag for i, (frag, _proof) in group.items()}, self.k, self.n
            )
        except ErasureError:
            self._bad_roots.add(root)
            return None
        # Re-encode and compare roots: either every fragment equals the
        # re-encoding (all honest subsets decode this same payload) or
        # the sender encoded inconsistently and *no* honest replica
        # delivers — the same verdict from any k-subset.
        if merkle_root(rs_encode(payload, self.k, self.n)) != root:  # repro-quorum: declared
            self._bad_roots.add(root)
            return None
        self._payload_by_digest[root] = payload
        return payload

    def pull_candidates(self) -> List[int]:
        """Echo voters for the wanted digest — they held the payload (or
        a fragment of it) when they voted; deterministic order."""
        if self.want_pull is None:
            return []
        return sorted(self._echoes.get(self.want_pull, set()) - {self.me})

    def _on_pull(self, sender: int, msg: RbcPull) -> List[Outgoing]:
        served = self._pull_served.get(sender, 0)
        if sender == self.me or served >= MAX_PULL_SERVES:
            return []
        payload = self._payload_by_digest.get(msg.digest)
        if payload is not None:
            self._pull_served[sender] = served + 1
            return [(sender, RbcPayload(self.sid, payload))]
        group = self._frags.get(msg.digest)
        if group:
            self._pull_served[sender] = served + 1
            return [
                (sender, RbcFrag(self.sid, msg.digest, idx, frag, proof))
                for idx, (frag, proof) in sorted(group.items())
            ]
        return []

    def _on_payload(self, sender: int, msg: RbcPayload) -> List[Outgoing]:
        if self.delivered is not None or self.want_pull is None:
            return []
        digest = self.want_pull
        if not self._payload_matches(digest, msg.payload):
            return []  # unsolicited or forged payload: dropped
        # Bounded: only the single quorum-agreed digest is ever stored
        # from a pull response.
        # repro-lint: disable=C304
        self._payload_by_digest[digest] = msg.payload
        self._maybe_complete(digest)
        return []

    def _payload_matches(self, digest: bytes, payload: bytes) -> bool:
        if _digest(payload) == digest:
            return True
        if self.mode == "erasure" or digest in self._frags:
            # The awaited digest may be a fragment-tree root.
            return merkle_root(rs_encode(payload, self.k, self.n)) == digest  # repro-quorum: declared
        return False


class ReliableBroadcast:
    """Session multiplexer: one per replica, any number of concurrent sids.

    ``schedule``/``emit`` wire in staged pull retries: ``schedule(delay,
    thunk)`` arms a timer and ``emit(outgoing)`` transmits messages from
    timer context.  Without them, a needed pull degrades to one burst to
    every candidate — correct (>= t+1 candidates are honest) but less
    frugal; with them, candidates are tried one at a time with a timeout,
    ending in a burst after :data:`MAX_PULL_ROUNDS` cycles.
    """

    def __init__(
        self,
        n: int,
        t: int,
        me: int,
        deliver: Callable[[str, bytes], None],
        mode: str = "digest",
        schedule: Optional[Callable[[float, Callable[[], None]], object]] = None,
        emit: Optional[Callable[[List[Outgoing]], None]] = None,
        pull_timeout: float = PULL_RETRY_TIMEOUT,
    ) -> None:
        if n <= 3 * t:
            raise ConfigError("reliable broadcast requires n > 3t")
        if mode not in RBC_MODES:
            raise ConfigError(f"unknown rbc mode {mode!r} (want {RBC_MODES})")
        self.n = n
        self.t = t
        self.me = me
        self.mode = mode
        self.pull_timeout = pull_timeout
        self._deliver = deliver
        self._schedule = schedule
        self._emit = emit
        self._instances: Dict[str, RbcInstance] = {}

    def _instance(self, sid: str) -> RbcInstance:
        if sid not in self._instances:
            self._instances[sid] = RbcInstance(
                self.n, self.t, self.me, sid, self.mode
            )
        return self._instances[sid]

    def broadcast(self, sid: str, payload: bytes) -> List[Outgoing]:
        instance = self._instance(sid)
        if self.mode == "erasure":
            out: List[Outgoing] = []
            for dest, msg in instance.disperse(payload):
                if dest == self.me:
                    out.extend(self.on_message(self.me, msg))
                else:
                    out.append((dest, msg))
            return out
        out = instance.start(payload)
        # The broadcaster also processes its own SEND.
        out.extend(self.on_message(self.me, RbcSend(sid, payload)))
        return out

    def on_message(self, sender: int, msg: object) -> List[Outgoing]:
        sid = getattr(msg, "sid", None)
        if not isinstance(sid, str):
            return []
        instance = self._instance(sid)
        already = instance.delivered is not None
        out = instance.on_message(sender, msg)
        if instance.delivered is None and instance.want_pull is not None:
            out.extend(self._start_pull(instance))
        if instance.delivered is not None and not already:
            self._deliver(sid, instance.delivered)
        return out

    def delivered(self, sid: str) -> Optional[bytes]:
        instance = self._instances.get(sid)
        return instance.delivered if instance else None

    # -- pull fallback ---------------------------------------------------------

    def _start_pull(self, instance: RbcInstance) -> List[Outgoing]:
        if instance.pull_active or instance.want_pull is None:
            return []
        candidates = instance.pull_candidates()
        if not candidates:
            return []  # re-triggered when the next vote arrives
        instance.pull_active = True
        if self._schedule is None or self._emit is None:
            # No timer plumbing: pull from everyone at once.  At least
            # t+1 candidates are honest, so one response is guaranteed.
            return [
                (dest, RbcPull(instance.sid, instance.want_pull))
                for dest in candidates
            ]
        target = candidates[instance.pull_attempt % len(candidates)]
        instance.pull_attempt += 1
        self._schedule(
            self.pull_timeout, lambda: self._retry_pull(instance.sid)
        )
        return [(target, RbcPull(instance.sid, instance.want_pull))]

    def _retry_pull(self, sid: str) -> None:
        instance = self._instances.get(sid)
        if (
            instance is None
            or instance.delivered is not None
            or instance.want_pull is None
            or self._emit is None
        ):
            return
        candidates = instance.pull_candidates()
        if not candidates:
            return
        if instance.pull_attempt >= MAX_PULL_ROUNDS * len(candidates):
            # Terminal burst: ask every candidate, stop the timer chain.
            self._emit(
                [
                    (dest, RbcPull(instance.sid, instance.want_pull))
                    for dest in candidates
                ]
            )
            return
        target = candidates[instance.pull_attempt % len(candidates)]
        instance.pull_attempt += 1
        self._emit([(target, RbcPull(instance.sid, instance.want_pull))])
        if self._schedule is not None:
            self._schedule(
                self.pull_timeout, lambda: self._retry_pull(sid)
            )
