"""Randomized asynchronous binary Byzantine agreement.

The fall-back path of the optimistic atomic broadcast uses binary
agreement to decide on epoch changes (§3.3: the protocol "invokes a
Byzantine agreement protocol to establish a new leader").  SINTRA used
the Cachin–Kursawe–Shoup protocol; we implement the same family —
round-based, coin-terminating agreement with ``n > 3t`` in a fully
asynchronous network (the structure below follows Mostéfaoui–Moumen–
Raynal's presentation, with the threshold-signature coin of CKS).

Round structure (for round ``r`` with estimate ``est``):

1. *Binary-value broadcast*: send ``EST(r, est)``; relay any value seen
   from ``t+1`` distinct replicas; accept into ``bin_values`` any value
   seen from ``2t+1``.
2. Once ``bin_values`` is non-empty, send ``AUX(r, w)`` for one accepted
   value; wait for ``n - t`` AUX messages whose values are all accepted.
3. If those carry a single value ``b``: if ``b`` equals the common coin
   for ``r``, decide ``b``; else set ``est = b``.  If both values
   appear, set ``est`` to the coin.  Proceed to round ``r + 1``.

A decided replica broadcasts ``DECIDED(b)``; ``t+1`` matching DECIDED
messages are also grounds to decide, which lets lagging replicas finish
without running extra rounds.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.broadcast.coin import CommonCoin
from repro.broadcast.messages import AbaAux, AbaDecided, AbaEst
from repro.errors import ConfigError

Outgoing = Tuple[int, object]
BROADCAST = -1

#: EST/AUX messages for rounds this far beyond the local round are ignored:
#: honest replicas stay within one round of each other, so per-round state
#: keyed by an attacker-chosen round number must not grow unboundedly.
MAX_ROUND_AHEAD = 64


class AbaInstance:
    """One agreement instance (one ``sid``) at one replica."""

    def __init__(self, n: int, t: int, me: int, sid: str, coin: CommonCoin) -> None:
        self.n = n
        self.t = t
        self.me = me
        self.sid = sid
        self.coin = coin
        self.round = 0
        self.estimate: Optional[int] = None
        self.decision: Optional[int] = None
        # Per round: EST senders by value, relayed flags, accepted values.
        self._est_senders: Dict[Tuple[int, int], Set[int]] = {}
        self._est_sent: Set[Tuple[int, int]] = set()
        self._bin_values: Dict[int, Set[int]] = {}
        self._aux_senders: Dict[int, Dict[int, int]] = {}  # round -> sender -> value
        self._aux_sent: Set[int] = set()
        self._coin_requested: Set[int] = set()
        self._decided_senders: Dict[int, Set[int]] = {0: set(), 1: set()}
        self._sent_decided = False
        self._round_done: Set[int] = set()

    # -- API -----------------------------------------------------------------

    def propose(self, value: int) -> List[Outgoing]:
        if value not in (0, 1):
            raise ConfigError("binary agreement takes 0 or 1")
        if self.estimate is not None:
            return []
        self.estimate = value
        return self._send_est(self.round, value)

    def on_message(self, sender: int, msg: object) -> List[Outgoing]:
        if self.decision is not None and not isinstance(msg, AbaDecided):
            # Keep helping with EST relays so others can finish.
            if isinstance(msg, AbaEst):
                return self._on_est(sender, msg)
            return []
        if isinstance(msg, AbaEst):
            return self._on_est(sender, msg)
        if isinstance(msg, AbaAux):
            return self._on_aux(sender, msg)
        if isinstance(msg, AbaDecided):
            return self._on_decided(sender, msg)
        return []

    def on_coin(self, round_: int, value: int) -> List[Outgoing]:
        """Called by the runtime when the coin for ``round_`` is revealed."""
        return self._try_finish_round(round_)

    # -- EST / binary-value broadcast ---------------------------------------------

    def _send_est(self, round_: int, value: int) -> List[Outgoing]:
        key = (round_, value)
        if key in self._est_sent:
            return []
        self._est_sent.add(key)
        msg = AbaEst(self.sid, round_, value)
        out: List[Outgoing] = [(BROADCAST, msg)]
        out.extend(self._on_est(self.me, msg))
        return out

    def _on_est(self, sender: int, msg: AbaEst) -> List[Outgoing]:
        if msg.value not in (0, 1):
            return []
        if msg.round > self.round + MAX_ROUND_AHEAD:
            return []
        key = (msg.round, msg.value)
        senders = self._est_senders.setdefault(key, set())
        if sender in senders:
            return []
        senders.add(sender)
        out: List[Outgoing] = []
        if len(senders) >= self.t + 1 and key not in self._est_sent:
            out.extend(self._send_est(msg.round, msg.value))
        if len(senders) >= 2 * self.t + 1:
            accepted = self._bin_values.setdefault(msg.round, set())
            if msg.value not in accepted:
                accepted.add(msg.value)
                out.extend(self._maybe_send_aux(msg.round))
                out.extend(self._try_finish_round(msg.round))
        return out

    # -- AUX ------------------------------------------------------------------------

    def _maybe_send_aux(self, round_: int) -> List[Outgoing]:
        if round_ in self._aux_sent or round_ != self.round:
            return []
        accepted = self._bin_values.get(round_, set())
        if not accepted:
            return []
        self._aux_sent.add(round_)
        value = min(accepted)  # deterministic pick among accepted values
        msg = AbaAux(self.sid, round_, value)
        out: List[Outgoing] = [(BROADCAST, msg)]
        out.extend(self._on_aux(self.me, msg))
        return out

    def _on_aux(self, sender: int, msg: AbaAux) -> List[Outgoing]:
        if msg.value not in (0, 1):
            return []
        if msg.round > self.round + MAX_ROUND_AHEAD:
            return []
        per_round = self._aux_senders.setdefault(msg.round, {})
        if sender in per_round:
            return []
        per_round[sender] = msg.value
        return self._try_finish_round(msg.round)

    # -- round completion ---------------------------------------------------------------

    def _try_finish_round(self, round_: int) -> List[Outgoing]:
        if round_ != self.round or self.decision is not None:
            return []
        if round_ in self._round_done:
            return []
        accepted = self._bin_values.get(round_, set())
        per_round = self._aux_senders.get(round_, {})
        valid_aux = {
            sender: value
            for sender, value in per_round.items()
            if value in accepted
        }
        if len(valid_aux) < self.n - self.t:
            return []
        out: List[Outgoing] = []
        if round_ not in self._coin_requested:
            self._coin_requested.add(round_)
            out.extend(self.coin.request(self.sid, round_))
            # Releasing our own share may complete the coin synchronously,
            # re-entering this method through the coin-ready callback.  If
            # that nested call finished the round (and advanced
            # ``self.round``), finishing it again here would advance the
            # round a second time and strand this replica in a round no
            # quorum ever joins.
            if round_ in self._round_done or round_ != self.round:
                return out
        coin = self.coin.value(self.sid, round_)
        if coin is None:
            return out
        self._round_done.add(round_)
        values = set(valid_aux.values())
        if len(values) == 1:
            (b,) = values
            if b == coin:
                out.extend(self._decide(b))
                return out
            self.estimate = b
        else:
            self.estimate = coin
        self.round += 1
        out.extend(self._send_est(self.round, self.estimate))
        out.extend(self._maybe_send_aux(self.round))
        out.extend(self._try_finish_round(self.round))
        return out

    # -- decision -------------------------------------------------------------------------

    def _decide(self, value: int) -> List[Outgoing]:
        if self.decision is not None:
            return []
        self.decision = value
        out: List[Outgoing] = []
        if not self._sent_decided:
            self._sent_decided = True
            out.append((BROADCAST, AbaDecided(self.sid, value)))
        return out

    def _on_decided(self, sender: int, msg: AbaDecided) -> List[Outgoing]:
        if msg.value not in (0, 1):
            return []
        senders = self._decided_senders[msg.value]
        if sender in senders:
            return []
        senders.add(sender)
        if len(senders) >= self.t + 1 and self.decision is None:
            # t+1 DECIDEDs include an honest replica, so the value is safe.
            return self._decide(msg.value)
        return []


class BinaryAgreement:
    """Multiplexes agreement instances over one coin endpoint."""

    def __init__(
        self,
        n: int,
        t: int,
        me: int,
        coin_key,
        on_decide: Callable[[str, int], None],
    ) -> None:
        if n <= 3 * t:
            raise ConfigError("binary agreement requires n > 3t")
        self.n = n
        self.t = t
        self.me = me
        self._on_decide = on_decide
        self._pending_coin_out: List[Outgoing] = []
        self.coin = CommonCoin(coin_key, me, self._coin_ready)
        self._instances: Dict[str, AbaInstance] = {}
        self._decided: Dict[str, int] = {}

    def _instance(self, sid: str) -> AbaInstance:
        if sid not in self._instances:
            self._instances[sid] = AbaInstance(self.n, self.t, self.me, sid, self.coin)
        return self._instances[sid]

    def propose(self, sid: str, value: int) -> List[Outgoing]:
        instance = self._instance(sid)
        out = instance.propose(value)
        out.extend(self._collect(sid, instance))
        return out

    def on_message(self, sender: int, msg: object) -> List[Outgoing]:
        sid = getattr(msg, "sid", None)
        if sid is None:
            return []
        out: List[Outgoing] = []
        if msg.__class__.__name__ == "CoinShare":
            out.extend(self.coin.on_message(sender, msg))
            out.extend(self._pending_coin_out)
            self._pending_coin_out = []
            # The coin callback may have unblocked the instance.
            instance = self._instances.get(sid)
            if instance is not None:
                out.extend(self._collect(sid, instance))
            return out
        instance = self._instance(sid)
        out.extend(instance.on_message(sender, msg))
        out.extend(self._collect(sid, instance))
        return out

    def _coin_ready(self, sid: str, round_: int, value: int) -> None:
        instance = self._instances.get(sid)
        if instance is None:
            return
        self._pending_coin_out.extend(instance.on_coin(round_, value))

    def _collect(self, sid: str, instance: AbaInstance) -> List[Outgoing]:
        out = list(self._pending_coin_out)
        self._pending_coin_out = []
        if instance.decision is not None and sid not in self._decided:
            self._decided[sid] = instance.decision
            self._on_decide(sid, instance.decision)
        return out

    def decision(self, sid: str) -> Optional[int]:
        return self._decided.get(sid)
