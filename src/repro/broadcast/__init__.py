"""Asynchronous BFT broadcast substrate (our SINTRA equivalent).

Implements the protocol stack the paper's prototype obtained from SINTRA:

* Bracha reliable broadcast (:mod:`repro.broadcast.rbc`)
* threshold-signature common coin (:mod:`repro.broadcast.coin`)
* randomized asynchronous binary Byzantine agreement
  (:mod:`repro.broadcast.aba`)
* optimistic atomic broadcast with a leader fast path and an
  agreement-based fall-back (:mod:`repro.broadcast.abc`)

All protocols are sans-IO: they consume ``(sender, message)`` events and
emit outgoing messages plus timer requests, so the same code runs on the
discrete-event simulator and the asyncio transport.  The model is the
paper's: ``n > 3t``, asynchronous authenticated reliable point-to-point
links, Byzantine corruptions.
"""

from repro.broadcast.rbc import ReliableBroadcast
from repro.broadcast.coin import CommonCoin
from repro.broadcast.aba import BinaryAgreement
from repro.broadcast.abc import AtomicBroadcast

__all__ = [
    "ReliableBroadcast",
    "CommonCoin",
    "BinaryAgreement",
    "AtomicBroadcast",
]
