"""Common coin from threshold signatures (Cachin–Kursawe–Shoup style).

Each replica holds a share of a dedicated *coin key* (an ``(n, t)``
threshold RSA key distinct from the zone key).  The coin for
``(sid, round)`` is obtained by threshold-signing the string
``coin/<sid>/<round>``: since the signature is unique and unpredictable
without ``t+1`` shares, hashing it yields an unbiased bit that the
adversary cannot learn before honest parties reveal their shares.  This
is exactly how SINTRA's binary agreement obtained its randomness.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.broadcast.messages import CoinShare
from repro.crypto.shoup import SignatureShare, ThresholdKeyShare
from repro.errors import AssemblyError

Outgoing = Tuple[int, object]
BROADCAST = -1


def _coin_message(sid: str, round_: int) -> bytes:
    return f"coin/{sid}/{round_}".encode()


class CommonCoin:
    """Per-replica coin endpoint; sessions keyed by (sid, round).

    Shares are verified with their correctness proofs, so ``t`` corrupted
    replicas can neither fix nor bias the coin.
    """

    def __init__(
        self,
        key_share: ThresholdKeyShare,
        me: int,
        on_value: Callable[[str, int, int], None],
    ) -> None:
        self.key_share = key_share
        self.public = key_share.public
        self.me = me
        self._on_value = on_value
        self._shares: Dict[Tuple[str, int], Dict[int, SignatureShare]] = {}
        self._values: Dict[Tuple[str, int], int] = {}
        self._requested: Set[Tuple[str, int]] = set()

    def value(self, sid: str, round_: int) -> Optional[int]:
        return self._values.get((sid, round_))

    def request(self, sid: str, round_: int) -> List[Outgoing]:
        """Reveal our share for this coin; returns messages to send."""
        key = (sid, round_)
        if key in self._requested:
            return []
        self._requested.add(key)
        message = _coin_message(sid, round_)
        share = self.key_share.generate_share_with_proof(message)
        out: List[Outgoing] = [(BROADCAST, CoinShare(sid, round_, share))]
        self._accept_share(sid, round_, self.me, share)
        return out

    def on_message(self, sender: int, msg: object) -> List[Outgoing]:
        if not isinstance(msg, CoinShare):
            return []
        self._accept_share(msg.sid, msg.round, sender, msg.share)
        return []

    def _accept_share(
        self, sid: str, round_: int, sender: int, share: SignatureShare
    ) -> None:
        key = (sid, round_)
        if key in self._values:
            return
        message = _coin_message(sid, round_)
        if share.index != sender + 1:
            return  # a replica may only contribute its own share
        if not self.public.share_is_valid(message, share):
            return
        pool = self._shares.setdefault(key, {})
        pool[share.index] = share
        if len(pool) < self.public.t + 1:
            return
        try:
            signature = self.public.assemble(
                message, list(pool.values())[: self.public.t + 1]
            )
        except AssemblyError:
            return
        if not self.public.signature_is_valid(message, signature):
            return
        value = hashlib.sha256(signature).digest()[0] & 1
        self._values[key] = value
        self._on_value(sid, round_, value)
