"""Bounded payload/fragment stores for the digest-vote broadcast plane.

When votes carry digests instead of payloads (DESIGN.md §5i), replicas
must buffer payloads and erasure fragments keyed by attacker-visible ids
(request ids, Merkle roots).  Left unbounded that is a textbook
KeyTrap-class memory vector, so both stores here are strict LRU caches
with an explicit ``max_entries`` bound and the repo-wide audit contract
(``stats`` with hits/misses/evictions, ``__len__`` never exceeding the
bound; registered in ``AUDITED_INSTANCE_CACHES``).

Eviction can, in principle, drop an in-flight entry under deliberate
flooding — the protocols treat that exactly like a lost pull response
and re-request, so bounded memory costs retries, never safety.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

PAYLOAD_STORE_ENTRIES = 4096
FRAGMENT_STORE_ENTRIES = 4096

#: Hard per-group fragment-slot ceiling; callers additionally bound the
#: index to ``0..n-1`` before insertion (identity check on the wire).
MAX_FRAGMENTS_PER_GROUP = 256


class PayloadStore:
    """LRU map ``key -> payload bytes`` with an explicit entry bound."""

    def __init__(self, max_entries: int = PAYLOAD_STORE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[str, bytes]" = OrderedDict()
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def put(self, key: str, payload: bytes) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        while len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
            self.stats["evictions"] += 1
        self._entries[key] = payload

    def get(self, key: str) -> Optional[bytes]:
        payload = self._entries.get(key)
        if payload is None:
            self.stats["misses"] += 1
            return None
        self._entries.move_to_end(key)
        self.stats["hits"] += 1
        return payload

    def pop(self, key: str) -> Optional[bytes]:
        return self._entries.pop(key, None)


class FragmentStore:
    """LRU map ``(key, root) -> {index: (fragment, proof)}``.

    One *group* holds the fragments seen for one (request id, Merkle
    root) pair; the LRU bound counts groups, and each group is further
    capped at :data:`MAX_FRAGMENTS_PER_GROUP` slots.
    """

    def __init__(self, max_entries: int = FRAGMENT_STORE_ENTRIES) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._groups: "OrderedDict[Tuple[str, bytes], Dict[int, Tuple[bytes, object]]]" = (
            OrderedDict()
        )
        self.stats: Dict[str, int] = {"hits": 0, "misses": 0, "evictions": 0}

    def __len__(self) -> int:
        return len(self._groups)

    def put(
        self, key: str, root: bytes, index: int, fragment: bytes, proof: object
    ) -> bool:
        """Store one fragment; returns True when the slot was new."""
        group_key = (key, root)
        group = self._groups.get(group_key)
        if group is None:
            while len(self._groups) >= self.max_entries:
                self._groups.popitem(last=False)
                self.stats["evictions"] += 1
            group = {}
            self._groups[group_key] = group
        else:
            self._groups.move_to_end(group_key)
        if index in group or len(group) >= MAX_FRAGMENTS_PER_GROUP:
            return False
        group[index] = (fragment, proof)
        return True

    def group(self, key: str, root: bytes) -> Dict[int, Tuple[bytes, object]]:
        """The fragments held for (key, root); ``{}`` when unknown."""
        group = self._groups.get((key, root))
        if group is None:
            self.stats["misses"] += 1
            return {}
        self._groups.move_to_end((key, root))
        self.stats["hits"] += 1
        return group

    def count(self, key: str, root: bytes) -> int:
        group = self._groups.get((key, root))
        return 0 if group is None else len(group)

    def discard(self, key: str) -> None:
        """Drop every root's group for ``key`` (e.g. after delivery)."""
        stale = [gk for gk in self._groups if gk[0] == key]
        for gk in stale:
            del self._groups[gk]
