"""Optimistic asynchronous atomic broadcast (Kursawe–Shoup style).

This is the protocol the paper uses to disseminate *every* DNS request to
all replicas (§3.3): a fast **optimistic** mode in which a leader orders
requests, and a **fall-back** mode entered when the leader is apparently
not performing correctly, which runs a Byzantine agreement to switch
epochs and re-establish a consistent state.

Fast path (no crypto beyond transferable prepare authenticators):

1. A request enters via :meth:`AtomicBroadcast.a_broadcast` — the replica
   sends ``INITIATE`` to all (the client talks to one gateway, §3.4).
2. The epoch's leader assigns the next sequence number and sends
   ``ORDER(epoch, seq, request)``.
3. Replicas answer with a *signed* ``PREPARE(epoch, seq, digest)``; a set
   of ``2t+1`` valid prepares is a transferable **prepare certificate**.
4. A replica holding a certificate broadcasts ``COMMIT``; on ``2t+1``
   commits the request is **a-delivered** in sequence order.

Two quorum intersections give safety: two certificates for the same
``(epoch, seq)`` share an honest replica, so at most one digest per slot;
and a delivered slot implies ``t+1`` honest replicas hold its
certificate, so *any* ``n-t`` epoch-final messages collected during
fall-back contain that certificate — the new epoch can never lose a
delivered request.

Fall-back: replicas that time out on an undelivered request broadcast
``COMPLAIN``; ``t+1`` complaints are joined, ``2t+1`` complaints start a
binary Byzantine agreement on switching epochs (this is where the
threshold-coin ABA of :mod:`repro.broadcast.aba` runs).  After deciding,
replicas send signed ``EPOCH_FINAL`` messages carrying their certificates
and pending requests; the next leader assembles ``n-t`` of them into
``NEW_EPOCH``, which every replica *revalidates and recomputes
deterministically* — a Byzantine new leader can stall but never corrupt
the sequence.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.broadcast.aba import BinaryAgreement
from repro.broadcast.messages import (
    MAX_BATCH_NESTING,
    AbaAux,
    AbaDecided,
    AbaEst,
    AbcCommit,
    AbcComplain,
    AbcEpochFinal,
    AbcFrag,
    AbcInitiate,
    AbcNewEpoch,
    AbcOrder,
    AbcPayload,
    AbcPrepare,
    AbcPull,
    CoinShare,
    PrepareCertificate,
    decode_batch,
    encode_batch,
    is_batch_payload,
)
from repro.broadcast.stores import FragmentStore, PayloadStore
from repro.crypto.executor import CryptoExecutor
from repro.crypto.merkle import merkle_proof, merkle_root, merkle_verify
from repro.crypto.rsa import RsaPrivateKey, RsaPublicKey
from repro.crypto.shoup import ThresholdKeyShare
from repro.errors import ConfigError
from repro.util.erasure import ErasureError, rs_decode, rs_encode

DeliverFn = Callable[[str, bytes], None]
SendFn = Callable[[int, object], None]
ScheduleFn = Callable[[float, Callable[[], None]], Any]  # returns cancellable

DEFAULT_TIMEOUT = 5.0

#: Cap on not-yet-delivered requests buffered in ``pending``: one INITIATE
#: per distinct payload, so without a cap any peer (or a flood of clients
#: through an honest gateway) could grow memory without bound (KeyTrap).
MAX_PENDING_REQUESTS = 65536

#: Fast-path messages for sequence slots this far beyond ``next_deliver``
#: are ignored.  A Byzantine replica can *sign* prepares for arbitrary
#: sequence numbers, so each accepted seq opens a pool entry; honest
#: replicas never run ahead of delivery by anything close to this window,
#: so the bound affects adversarial traffic only.
MAX_SEQ_AHEAD = 4096

#: Complaints and epoch-final messages for epochs this far beyond our own
#: are ignored.  Epoch numbers only advance through a 2t+1 quorum, so an
#: honest replica can lag at most a handful of epochs; without the bound a
#: single Byzantine replica could key unbounded ``_complaints``/``_finals``
#: state by inventing far-future epoch numbers.
MAX_EPOCH_AHEAD = 64

MODE_FAST = "fast"
MODE_RECOVERY = "recovery"

#: Request-introduction modes for the fast path (DESIGN.md §5i).
#: ``full`` ships the whole payload in both INITIATE and ORDER; ``digest``
#: keeps the INITIATE fan-out but strips ORDER frames down to the
#: payload-derived request id (with a pull fallback for withheld
#: payloads); ``erasure`` additionally replaces the INITIATE fan-out with
#: per-replica Reed-Solomon fragments so no link carries the whole batch.
#: The recovery path (EPOCH_FINAL / NEW_EPOCH / re-batched orders) always
#: travels full-payload — recovery is rare and must be self-contained.
DISSEMINATION_MODES = ("full", "digest", "erasure")

#: Delay before (re)pulling the payload behind an unresolved digest-mode
#: ORDER.  The happy path never pulls: the INITIATE or the reconstructed
#: erasure payload is already in flight when the ORDER arrives.
PULL_RETRY_TIMEOUT = 0.25

#: Pull attempts per request before giving up and letting the complaint /
#: epoch-change machinery own liveness for the stalled slot.
MAX_PULL_ATTEMPTS = 8

#: Pull responses served per requesting peer — a pull serves a full
#: payload, so without a budget a Byzantine peer could use an honest
#: replica as a bandwidth amplifier.
MAX_PULL_SERVES_PER_SENDER = 64

#: Payloads below this size are cheaper to fan out whole than to frame as
#: ``n`` Merkle-proven fragments; erasure mode sends them as plain
#: INITIATEs.
ERASURE_MIN_BYTES = 256


def derive_request_id(payload: bytes) -> str:
    """Request ids are payload digests, so every replica derives the same id."""
    return hashlib.sha256(payload).hexdigest()[:32]


#: Request id of the empty payload.  A digest-mode ORDER's wire frame
#: carries ``payload=b""``; a genuine empty request is the one payload
#: that collides with that framing, so empty requests always travel full.
_EMPTY_RID = derive_request_id(b"")


def request_digest(epoch: int, seq: int, payload: bytes) -> bytes:
    h = hashlib.sha256()
    h.update(f"{epoch}/{seq}/".encode())
    h.update(payload)
    return h.digest()


def _prepare_signing_input(epoch: int, seq: int, digest: bytes) -> bytes:
    return b"prepare/" + f"{epoch}/{seq}/".encode() + digest


def _final_signing_input(final: AbcEpochFinal) -> bytes:
    h = hashlib.sha256()
    h.update(f"final/{final.epoch}/{final.sender}/{final.delivered_seq}/".encode())
    for cert in final.certificates:
        h.update(f"{cert.epoch}/{cert.seq}/".encode())
        h.update(cert.digest)
    for rid, payload in final.pending:
        h.update(rid.encode())
        h.update(hashlib.sha256(payload).digest())
    return h.digest()


class BatchQueue:
    """Accumulates request payloads and flushes them as one batch.

    SINTRA-style amortization: instead of paying a full agreement instance
    (ORDER / PREPARE-certificate / COMMIT round with its per-slot signature
    work) for every request, the gateway buffers payloads and hands the
    broadcast layer one length-prefixed batch per sequence slot.  A batch
    is flushed when it reaches ``max_batch`` entries (size threshold) or
    ``max_delay`` elapses on the local clock since the first buffered entry
    (latency threshold), whichever comes first.
    """

    def __init__(
        self,
        max_batch: int,
        max_delay: float,
        flush: Callable[[List[bytes]], None],
        schedule: ScheduleFn,
    ) -> None:
        if max_batch < 1:
            raise ConfigError("batch size must be at least 1")
        if max_delay <= 0:
            raise ConfigError("batch flush delay must be positive")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self._flush_fn = flush
        self._schedule = schedule
        self._buffer: List[bytes] = []
        self._timer: Optional[Any] = None
        self.stats: Dict[str, int] = {
            "flushes": 0,
            "flushed_requests": 0,
            "size_flushes": 0,
            "timer_flushes": 0,
        }

    def __len__(self) -> int:
        return len(self._buffer)

    def append(self, payload: bytes) -> None:
        """Buffer one payload; flush if the size threshold is reached."""
        self._buffer.append(payload)
        if len(self._buffer) >= self.max_batch:
            self.flush(reason="size")
        elif self._timer is None:
            self._timer = self._schedule(self.max_delay, self._on_timer)

    def _on_timer(self) -> None:
        self._timer = None
        self.flush(reason="timer")

    def flush(self, reason: str = "explicit") -> None:
        """Hand all buffered payloads to the flush callback, oldest first."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self.stats["flushes"] += 1
        self.stats["flushed_requests"] += len(batch)
        if reason == "size":
            self.stats["size_flushes"] += 1
        elif reason == "timer":
            self.stats["timer_flushes"] += 1
        self._flush_fn(batch)


class AuthPlane:
    """Broadcast-layer authenticator crypto (PREPARE / EPOCH_FINAL RSA).

    Routes signing and verification through a pluggable
    :class:`~repro.crypto.executor.CryptoExecutor` when one is attached;
    :meth:`verify_many` amortizes a whole authenticator pool — a PREPARE
    certificate's 2t+1 signatures, or a NEW_EPOCH's n-t signed finals —
    into one executor task instead of one per signature.  Without an
    executor it computes inline, exactly as the pre-plane code did.
    """

    def __init__(
        self,
        auth_key: RsaPrivateKey,
        auth_public: List[RsaPublicKey],
        executor: Optional[CryptoExecutor] = None,
    ) -> None:
        self.auth_key = auth_key
        self.auth_public = list(auth_public)
        self.executor = executor

    def sign(self, data: bytes) -> bytes:
        if self.executor is not None and self.executor.auth_key is not None:
            return self.executor.rsa_sign(data)
        return self.auth_key.sign(data)

    def verify(self, signer: int, data: bytes, signature: bytes) -> bool:
        if self.executor is not None:
            return self.executor.rsa_verify(
                self.auth_public[signer], data, signature
            )
        return self.auth_public[signer].is_valid(data, signature)

    def verify_many(
        self, items: List[Tuple[RsaPublicKey, bytes, bytes]]
    ) -> List[bool]:
        if self.executor is not None:
            return self.executor.rsa_verify_many(items)
        return [key.is_valid(data, sig) for key, data, sig in items]


class AtomicBroadcast:
    """One replica's endpoint of the atomic broadcast channel.

    Effects are injected: ``send(dest, msg)`` transmits over the
    authenticated link, ``schedule(delay, fn)`` arms a timer (returning a
    handle with ``.cancel()``), and ``deliver(request_id, payload)`` hands
    an a-delivered request to the replicated state machine.
    """

    def __init__(
        self,
        n: int,
        t: int,
        me: int,
        auth_key: RsaPrivateKey,
        auth_public: List[RsaPublicKey],
        coin_key: ThresholdKeyShare,
        deliver: DeliverFn,
        send: SendFn,
        schedule: ScheduleFn,
        timeout: float = DEFAULT_TIMEOUT,
        crypto: Optional[AuthPlane] = None,
        rebatch_max: int = 1,
        dissemination: str = "digest",
        erasure_min_bytes: int = ERASURE_MIN_BYTES,
    ) -> None:
        if n <= 3 * t:
            raise ConfigError("atomic broadcast requires n > 3t")
        if len(auth_public) != n:
            raise ConfigError("need one verification key per replica")
        if rebatch_max < 1:
            raise ConfigError("rebatch_max must be at least 1")
        if dissemination not in DISSEMINATION_MODES:
            raise ConfigError(
                f"unknown dissemination mode {dissemination!r}; "
                f"expected one of {DISSEMINATION_MODES}"
            )
        self.n = n
        self.t = t
        self.me = me
        self.auth_key = auth_key
        self.auth_public = auth_public
        self.crypto = crypto if crypto is not None else AuthPlane(auth_key, auth_public)
        # Leader-side re-batching on epoch change: a new leader re-frames
        # the pending backlog into fresh batches of up to this many
        # payloads per sequence slot, instead of ordering the requests
        # that piled up during the switch one agreement instance each.
        self.rebatch_max = rebatch_max
        self.dissemination = dissemination
        self.erasure_min_bytes = erasure_min_bytes
        self._deliver = deliver
        self._send = send
        self._schedule = schedule
        self.timeout = timeout

        self.epoch = 0
        self.mode = MODE_FAST
        self.next_deliver = 0
        self.delivered_ids: Set[str] = set()
        self.delivered_log: List[Tuple[int, str]] = []  # (seq, request_id)

        self.pending: Dict[str, bytes] = {}
        self._next_order_seq = 0  # leader's counter
        self._ordered: Dict[Tuple[int, int], Tuple[str, bytes]] = {}
        self._payload_by_digest: Dict[bytes, Tuple[str, bytes]] = {}
        self._prepared_digest: Dict[Tuple[int, int], bytes] = {}
        self._prepares: Dict[Tuple[int, int, bytes], Dict[int, bytes]] = {}
        # Distinct digests admitted per (epoch, seq) slot.  A Byzantine
        # signer carries a valid signature over any digest it invents, so
        # without a cap each in-window slot admits unlimited pool entries
        # in _prepares/_commits (digest stuffing).  Admission is bounded
        # *per sender* — each replica may introduce at most one digest per
        # slot — so a flooder exhausts only its own budget and can never
        # crowd out the honest leader's digest (a global first-come cap
        # would let one replica censor every slot).
        self._slot_digests: Dict[Tuple[int, int], Set[bytes]] = {}
        self._slot_introducer: Dict[Tuple[int, int], Dict[int, bytes]] = {}
        self._certificates: Dict[int, PrepareCertificate] = {}  # seq -> best cert
        self._commit_sent: Set[Tuple[int, int]] = set()
        self._commits: Dict[Tuple[int, int, bytes], Set[int]] = {}
        self._committed: Dict[int, bytes] = {}  # seq -> digest (commit quorum)
        self._skipped: Set[int] = set()

        # Fast-path traffic for an epoch we have not entered yet (or that
        # arrives while we are mid-recovery) is buffered and replayed once
        # NEW_EPOCH installs the epoch: links are reliable, so a replica
        # that switches epochs late must not lose the ORDER / PREPARE /
        # COMMIT messages the others sent while it lagged.
        self._future_buffer: List[Tuple[int, object]] = []
        self._complaints: Dict[int, Set[int]] = {}
        self._complained: Set[int] = set()
        # epoch -> sender -> the signed (final, signature) tuple, kept
        # whole so NEW_EPOCH can forward the signatures for re-verification
        self._finals: Dict[int, Dict[int, Tuple[AbcEpochFinal, bytes]]] = {}
        self._final_sent: Set[int] = set()
        self._new_epoch_done: Set[int] = set()
        self._timer: Optional[Any] = None
        self._recovery_timer: Optional[Any] = None

        # Digest/erasure dissemination state (DESIGN.md §5i).  Buffered
        # digest ORDERs whose payload has not arrived yet, keyed by
        # request id; resolved by INITIATE, fragment reconstruction, or
        # the pull fallback.  The payload archive keeps recently delivered
        # payloads around so this replica can serve late peers' pulls.
        self._awaiting_order: Dict[str, Tuple[int, AbcOrder]] = {}
        self._pull_attempt: Dict[str, int] = {}
        self._pull_served: Dict[int, int] = {}
        self._payload_archive = PayloadStore()
        self._frag_store = FragmentStore()
        self._frag_forwarded: Dict[str, bytes] = {}

        self.aba = BinaryAgreement(
            n, t, me, coin_key, on_decide=self._on_switch_decided
        )
        self._switch_decided: Set[int] = set()

        # Statistics for benchmarks/ablations.
        self.stats: Dict[str, int] = {
            "fast_deliveries": 0,
            "recovery_deliveries": 0,
            "epoch_changes": 0,
            "complaints_sent": 0,
            "initiates_dropped": 0,
            "out_of_window": 0,
            "rebatches": 0,
            "rebatched_requests": 0,
            "pulls_sent": 0,
            "pulls_served": 0,
            "erasure_disperses": 0,
            "erasure_reconstructions": 0,
        }

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    @property
    def leader(self) -> int:
        return self.epoch % self.n

    def delivery_digest(self) -> str:
        """Fingerprint of the a-delivered sequence ``(seq, request_id)*``.

        Atomic broadcast's total-order guarantee means every honest
        replica's digest must be identical once the network quiesces; the
        chaos harness's G1 check compares these directly.
        """
        h = hashlib.sha256()
        for seq, rid in self.delivered_log:
            h.update(f"{seq}:{rid};".encode())
        return h.hexdigest()

    def a_broadcast(self, payload: bytes) -> str:
        """Inject a request into the channel; returns its request id.

        Request ids are derived from the payload (distinct requests must
        have distinct payloads — DNS messages carry random ids, so they
        do), which lets epoch recovery recompute ids deterministically.
        """
        rid = derive_request_id(payload)
        if self.dissemination == "erasure" and len(payload) >= self.erasure_min_bytes:
            self._disperse(rid, payload)
            return rid
        msg = AbcInitiate(rid, payload)
        self._broadcast(msg)
        self.on_message(self.me, msg)
        return rid

    def on_message(self, sender: int, msg: object) -> None:
        """Feed one received protocol message."""
        if isinstance(msg, AbcInitiate):
            self._on_initiate(sender, msg)
        elif isinstance(msg, AbcOrder):
            self._on_order(sender, msg)
        elif isinstance(msg, AbcPrepare):
            self._on_prepare(sender, msg)
        elif isinstance(msg, AbcCommit):
            self._on_commit(sender, msg)
        elif isinstance(msg, AbcComplain):
            self._on_complain(sender, msg)
        elif isinstance(msg, AbcEpochFinal):
            self._on_epoch_final(sender, msg)
        elif isinstance(msg, AbcNewEpoch):
            self._on_new_epoch(sender, msg)
        elif isinstance(msg, AbcPull):
            self._on_pull(sender, msg)
        elif isinstance(msg, AbcPayload):
            self._on_payload(sender, msg)
        elif isinstance(msg, AbcFrag):
            self._on_frag(sender, msg)
        elif isinstance(msg, tuple) and len(msg) == 2 and isinstance(msg[0], AbcEpochFinal):
            self._on_epoch_final(sender, msg)
        elif isinstance(msg, (AbaEst, AbaAux, AbaDecided, CoinShare)):
            for dest, out in self.aba.on_message(sender, msg):
                self._route(dest, out)

    # ------------------------------------------------------------------
    # fast path
    # ------------------------------------------------------------------

    def _on_initiate(self, sender: int, msg: AbcInitiate) -> None:
        if msg.request_id in self.delivered_ids:
            return
        if msg.request_id not in self.pending:
            if len(self.pending) >= MAX_PENDING_REQUESTS:
                self.stats["initiates_dropped"] += 1
                return
            self.pending[msg.request_id] = msg.payload
            self._arm_timer()
        if msg.request_id in self._awaiting_order:
            self._replay_awaited(msg.request_id, msg.payload)
        if self.mode == MODE_FAST and self.me == self.leader:
            self._order_pending()

    def _order_pending(self, rebatch: bool = False) -> None:
        """Leader: assign sequence numbers to not-yet-ordered requests.

        With ``rebatch=True`` (a new leader right after an epoch switch)
        the backlog is re-framed into fresh batches of up to
        ``rebatch_max`` whole payloads per slot — recovery traffic is
        amortized the same way the gateway amortizes client traffic,
        instead of running one agreement instance per piled-up request.
        Re-batched payloads may themselves be gateway batch frames;
        delivery unwraps the nesting (see ``_mark_batch_delivered`` and
        the replica's recursive batch decoding).
        """
        already = {
            rid
            for (epoch, _), (rid, _) in self._ordered.items()
            if epoch == self.epoch
        }
        backlog = [
            rid
            for rid in sorted(self.pending)
            if rid not in already and rid not in self.delivered_ids
        ]
        if rebatch and self.rebatch_max > 1 and len(backlog) > 1:
            for i in range(0, len(backlog), self.rebatch_max):
                group = backlog[i : i + self.rebatch_max]
                if len(group) == 1:
                    self._order_one(group[0], self.pending[group[0]])
                    continue
                payload = encode_batch([self.pending[rid] for rid in group])
                self.stats["rebatches"] += 1
                self.stats["rebatched_requests"] += len(group)
                self._order_one(derive_request_id(payload), payload)
            return
        for rid in backlog:
            self._order_one(rid, self.pending[rid])

    def _order_one(self, rid: str, payload: bytes) -> None:
        seq = self._next_order_seq
        self._next_order_seq += 1
        order = AbcOrder(self.epoch, seq, rid, payload)
        if self.dissemination != "full" and payload and rid in self.pending:
            # Digest ORDER: followers hold (or will hold) the payload via
            # INITIATE / fragment reconstruction, so the wire frame needs
            # only the payload-derived request id.  Re-batched recovery
            # frames never entered pending and always travel full.
            self._broadcast(AbcOrder(self.epoch, seq, rid, b""))
        else:
            self._broadcast(order)
        self._on_order(self.me, order)

    def _seq_in_window(self, seq: int) -> bool:
        """Bound per-sequence state against Byzantine far-future slots."""
        if seq >= self.next_deliver + MAX_SEQ_AHEAD:
            self.stats["out_of_window"] += 1
            return False
        return True

    def _buffer_future(self, sender: int, msg: object, epoch: int) -> bool:
        """Hold fast-path messages we cannot process *yet* (not stale ones)."""
        if epoch > self.epoch or (epoch == self.epoch and self.mode != MODE_FAST):
            if len(self._future_buffer) < 4096:
                self._future_buffer.append((sender, msg))
            return True
        return False

    def _replay_buffered(self) -> None:
        buffered, self._future_buffer = self._future_buffer, []
        for sender, msg in buffered:
            self.on_message(sender, msg)

    def _on_order(self, sender: int, msg: AbcOrder) -> None:
        if self._buffer_future(sender, msg, msg.epoch):
            return
        if self.mode != MODE_FAST or msg.epoch != self.epoch:
            return
        if sender != self.leader:
            return  # only the epoch's leader may order
        if not self._seq_in_window(msg.seq):
            return
        key = (msg.epoch, msg.seq)
        if key in self._prepared_digest:
            return  # first ORDER for a slot wins; equivocation is ignored
        payload = msg.payload
        if payload == b"" and msg.request_id != _EMPTY_RID:
            # Digest-mode ORDER: the payload travels separately (INITIATE
            # or erasure fragments).  Unknown ids are buffered; the pull
            # fallback fires only if the payload never shows up.
            resolved = self._resolve_payload(msg.request_id)
            if resolved is None:
                self._await_order(sender, msg)
                return
            payload = resolved
        if msg.request_id != derive_request_id(payload):
            return  # ids are payload-derived; anything else is malformed
        digest = request_digest(msg.epoch, msg.seq, payload)
        self._ordered[key] = (msg.request_id, payload)
        self._payload_by_digest[digest] = (msg.request_id, payload)
        self._prepared_digest[key] = digest
        signature = self.crypto.sign(
            _prepare_signing_input(msg.epoch, msg.seq, digest)
        )
        prepare = AbcPrepare(msg.epoch, msg.seq, digest, self.me, signature)
        self._broadcast(prepare)
        self._on_prepare(self.me, prepare)
        # Prepares may have reached quorum before the ORDER arrived.  The
        # prepare quorum is n-t, not 2t+1: two certificates for the same
        # slot must share an honest signer for every n >= 3t+1, and
        # 2*(n-t) - n = n - 2t >= t+1 always, while 2t+1 only intersects
        # when n == 3t+1 exactly.
        pool = self._prepares.get((msg.epoch, msg.seq, digest))
        if pool is not None and len(pool) >= self.n - self.t:
            self._form_certificate(msg.epoch, msg.seq, digest, pool)
        self._advance_delivery(fast=True)

    # ------------------------------------------------------------------
    # digest/erasure dissemination (DESIGN.md §5i)
    # ------------------------------------------------------------------

    def _resolve_payload(self, rid: str) -> Optional[bytes]:
        """The payload behind ``rid``, if this replica holds it.

        ``pending`` entries come from unauthenticated INITIATEs, so the
        payload-derived id is re-checked here rather than trusted.
        """
        payload = self.pending.get(rid)
        if payload is not None and derive_request_id(payload) == rid:
            return payload
        archived = self._payload_archive.get(rid)
        if archived is not None and derive_request_id(archived) == rid:
            return archived
        return None

    def _await_order(self, sender: int, msg: AbcOrder) -> None:
        """Buffer a digest ORDER whose payload has not arrived yet.

        The happy path resolves itself: the INITIATE (or the reconstructed
        erasure payload) is already in flight and replays the order on
        arrival.  The pull timer only ends up sending traffic against a
        gateway or leader that withheld the payload.
        """
        if msg.request_id in self._awaiting_order:
            return  # one buffered order and one pull chain per request
        if len(self._awaiting_order) >= MAX_SEQ_AHEAD:
            return  # window-bounded; the slot stalls and complaints fire
        self._awaiting_order[msg.request_id] = (sender, msg)
        self._pull_attempt[msg.request_id] = 0
        self._schedule(PULL_RETRY_TIMEOUT, lambda: self._retry_pull(msg.request_id))

    def _replay_awaited(self, rid: str, payload: bytes) -> None:
        """Re-dispatch a buffered digest ORDER now that its payload is known."""
        entry = self._awaiting_order.pop(rid, None)
        self._pull_attempt.pop(rid, None)
        if entry is None:
            return
        sender, order = entry
        self._on_order(
            sender, AbcOrder(order.epoch, order.seq, order.request_id, payload)
        )

    def _retry_pull(self, rid: str) -> None:
        if rid not in self._awaiting_order or rid in self.delivered_ids:
            return
        payload = self._resolve_payload(rid)
        if payload is not None:
            self._replay_awaited(rid, payload)
            return
        attempt = self._pull_attempt.get(rid, 0)
        if attempt >= MAX_PULL_ATTEMPTS:
            # Stop pulling; the complaint / epoch-change machinery owns
            # liveness for the stalled slot from here.
            return
        self._pull_attempt[rid] = attempt + 1
        # Start with the leader (an honest leader always holds what it
        # ordered) and rotate through the other replicas on retry.
        target = (self.leader + attempt) % self.n
        if target == self.me:
            target = (target + 1) % self.n
        self.stats["pulls_sent"] += 1
        self._send(target, AbcPull(rid))
        self._schedule(PULL_RETRY_TIMEOUT, lambda: self._retry_pull(rid))

    def _on_pull(self, sender: int, msg: AbcPull) -> None:
        if sender == self.me or not 0 <= sender < self.n:  # repro-quorum: identity-bound
            return
        served = self._pull_served.get(sender, 0)
        if served >= MAX_PULL_SERVES_PER_SENDER:
            return  # per-peer budget: pulls cannot become an amplifier
        payload = self._resolve_payload(msg.request_id)
        if payload is None:
            return
        self._pull_served[sender] = served + 1
        self.stats["pulls_served"] += 1
        self._send(sender, AbcPayload(msg.request_id, payload))

    def _on_payload(self, sender: int, msg: AbcPayload) -> None:
        if msg.request_id not in self._awaiting_order:
            return  # unsolicited payload push
        if derive_request_id(msg.payload) != msg.request_id:
            return  # forged response; the retry chain keeps pulling
        if msg.request_id not in self.pending:
            if len(self.pending) >= MAX_PENDING_REQUESTS:
                self.stats["initiates_dropped"] += 1
            else:
                self.pending[msg.request_id] = msg.payload
        self._replay_awaited(msg.request_id, msg.payload)

    def _disperse(self, rid: str, payload: bytes) -> None:
        """Erasure-mode request introduction (AVID-M style).

        Frame the payload as ``n`` Reed-Solomon fragments (any ``n - 2t``
        reconstruct), Merkle-prove each against the fragment-tree root,
        and ship replica ``i`` only fragment ``i`` — no link out of the
        gateway carries the whole payload.  Each replica forwards its own
        fragment once, so every honest replica eventually holds at least
        ``n - t`` verified fragments.
        """
        fragments = rs_encode(payload, self.n - 2 * self.t, self.n)
        root = merkle_root(fragments)
        self.stats["erasure_disperses"] += 1
        own: Optional[AbcFrag] = None
        for index in range(self.n):
            frag = AbcFrag(
                rid, root, index, fragments[index], merkle_proof(fragments, index)
            )
            if index == self.me:
                own = frag
            else:
                self._send(index, frag)
        # The gateway holds the full payload, so it introduces the request
        # to itself directly; fragments were queued first so any ORDER a
        # leader-gateway emits departs each link after that replica's
        # direct fragment.
        self._on_initiate(self.me, AbcInitiate(rid, payload))
        if own is not None:
            self._on_frag(self.me, own)

    def _on_frag(self, sender: int, msg: AbcFrag) -> None:
        if msg.request_id in self.delivered_ids or msg.request_id in self.pending:
            return  # payload already known; fragments are redundant
        if not 0 <= msg.index < self.n:  # repro-quorum: identity-bound
            return
        if not merkle_verify(msg.root, msg.fragment, msg.proof):
            return
        if not self._frag_store.put(
            msg.request_id, msg.root, msg.index, msg.fragment, msg.proof
        ):
            return  # duplicate slot, or the group is at its cap
        if msg.index == self.me:
            self._forward_own_fragment(msg)
        group = self._frag_store.group(msg.request_id, msg.root)
        if len(group) >= self.n - 2 * self.t:  # repro-quorum: reconstruct
            self._reconstruct_request(msg.request_id, msg.root)

    def _forward_own_fragment(self, msg: AbcFrag) -> None:
        """Forward the fragment addressed to this replica, exactly once.

        One forward per request id keeps erasure traffic at one fragment
        in plus ``n - 1`` fragments out per request — duplicate or
        multi-root floods cannot amplify it.
        """
        if msg.request_id in self._frag_forwarded:
            return
        if len(self._frag_forwarded) >= MAX_PENDING_REQUESTS:
            return
        self._frag_forwarded[msg.request_id] = msg.root
        self._broadcast(msg)

    def _reconstruct_request(self, rid: str, root: bytes) -> None:
        group = self._frag_store.group(rid, root)
        fragments = {index: frag for index, (frag, _proof) in group.items()}
        try:
            payload = rs_decode(fragments, self.n - 2 * self.t, self.n)
        except ErasureError:
            return
        if derive_request_id(payload) != rid:
            # Inconsistent encoding, or a root that does not belong to
            # this request id.  Ids are payload-derived, so the binding is
            # self-certifying and every honest replica rejects identically.
            return
        self.stats["erasure_reconstructions"] += 1
        self._frag_store.discard(rid)
        self._on_initiate(self.me, AbcInitiate(rid, payload))

    def _on_prepare(self, sender: int, msg: AbcPrepare) -> None:
        if self._buffer_future(sender, msg, msg.epoch):
            return
        if msg.epoch != self.epoch or self.mode != MODE_FAST:
            return
        if msg.signer != sender:
            return
        if not self._seq_in_window(msg.seq):
            return
        if not self._verify_prepare(msg):
            return
        if not self._admit_slot_digest(sender, msg.epoch, msg.seq, msg.digest):
            return
        pool = self._prepares.setdefault((msg.epoch, msg.seq, msg.digest), {})
        if msg.signer in pool:
            return
        pool[msg.signer] = msg.signature
        if len(pool) >= self.n - self.t:
            self._form_certificate(msg.epoch, msg.seq, msg.digest, pool)

    def _admit_slot_digest(
        self, sender: int, epoch: int, seq: int, digest: bytes
    ) -> bool:
        """Admit at most one *introduced* digest per sender per slot.

        Honest replicas prepare/commit exactly one digest per slot, so a
        sender presenting a second distinct digest is equivocating —
        Byzantine digest stuffing aimed at growing the
        ``_prepares``/``_commits`` pools without bound.  Bounding per
        sender (rather than a global first-come cap) keeps the slot at
        ≤ ``n`` distinct digests while guaranteeing the honest leader's
        digest is always admitted: a flooder only burns its own budget.
        Voting for a digest someone else already introduced is free.
        """
        digests = self._slot_digests.setdefault((epoch, seq), set())
        if digest in digests:
            return True
        introducer = self._slot_introducer.setdefault((epoch, seq), {})
        if sender in introducer:
            return False  # this sender already introduced a different digest
        introducer[sender] = digest
        digests.add(digest)
        return True

    def _verify_prepare(self, msg: AbcPrepare) -> bool:
        if not 0 <= msg.signer < self.n:
            return False
        return self.crypto.verify(
            msg.signer,
            _prepare_signing_input(msg.epoch, msg.seq, msg.digest),
            msg.signature,
        )

    def _form_certificate(
        self, epoch: int, seq: int, digest: bytes, pool: Dict[int, bytes]
    ) -> None:
        known = self._payload_by_digest.get(digest)
        if known is None:
            return  # wait until the ORDER (payload) arrives
        existing = self._certificates.get(seq)
        if existing is not None and existing.epoch >= epoch:
            pass
        else:
            self._certificates[seq] = PrepareCertificate(
                epoch=epoch,
                seq=seq,
                digest=digest,
                payload=known[1],
                signatures=tuple(sorted(pool.items()))[: self.n - self.t],
            )
        if (epoch, seq) not in self._commit_sent:
            self._commit_sent.add((epoch, seq))
            commit = AbcCommit(epoch, seq, digest, self.me, b"")
            self._broadcast(commit)
            self._on_commit(self.me, commit)

    def _on_commit(self, sender: int, msg: AbcCommit) -> None:
        if self._buffer_future(sender, msg, msg.epoch):
            return
        if msg.epoch != self.epoch or self.mode != MODE_FAST:
            return
        if msg.signer != sender:
            return
        if not self._seq_in_window(msg.seq):
            return
        if not self._admit_slot_digest(sender, msg.epoch, msg.seq, msg.digest):
            return
        voters = self._commits.setdefault((msg.epoch, msg.seq, msg.digest), set())
        if sender in voters:
            return
        voters.add(sender)
        if len(voters) >= 2 * self.t + 1 and msg.seq not in self._committed:
            self._committed[msg.seq] = msg.digest
            self._advance_delivery(fast=True)

    def _advance_delivery(self, fast: bool) -> None:
        while True:
            seq = self.next_deliver
            if seq in self._skipped:
                self.next_deliver += 1
                continue
            digest = self._committed.get(seq)
            if digest is None:
                break
            known = self._payload_by_digest.get(digest)
            if known is None:
                break
            rid, payload = known
            self.next_deliver += 1
            self._deliver_once(seq, rid, payload, fast)
        self._arm_timer()

    def _deliver_once(self, seq: int, rid: str, payload: bytes, fast: bool) -> None:
        if rid in self.delivered_ids:
            return
        self.delivered_ids.add(rid)
        self.delivered_log.append((seq, rid))
        self.pending.pop(rid, None)
        self._awaiting_order.pop(rid, None)
        self._pull_attempt.pop(rid, None)
        self._frag_forwarded.pop(rid, None)
        self._frag_store.discard(rid)
        # Keep the payload pullable for peers whose digest ORDER outlived
        # their copy (pending is popped on delivery).
        self._payload_archive.put(rid, payload)
        self._mark_batch_delivered(payload)
        key = "fast_deliveries" if fast else "recovery_deliveries"
        self.stats[key] += 1
        self._deliver(rid, payload)

    def _mark_batch_delivered(self, payload: bytes, depth: int = 0) -> None:
        """Mark a delivered batch frame's constituent requests delivered.

        A re-batched frame carries payloads that entered the channel under
        their own request ids (they sit in ``pending`` and may be
        re-INITIATEd by peers); delivering the frame delivers them, so
        their ids must be marked to clear complaint pressure and dedupe
        future INITIATEs.  Recurses through nested frames (a new leader
        re-batches whole gateway batches) up to the decoding depth cap.
        """
        if depth >= MAX_BATCH_NESTING or not is_batch_payload(payload):
            return
        for entry in decode_batch(payload):
            entry_rid = derive_request_id(entry)
            # Bounded by total-ordered committed deliveries: every id
            # marked here rode inside a frame that passed consensus, so a
            # lone Byzantine replica cannot drive this growth.
            # repro-lint: disable=T404
            self.delivered_ids.add(entry_rid)
            self.pending.pop(entry_rid, None)
            self._mark_batch_delivered(entry, depth + 1)

    # ------------------------------------------------------------------
    # complaints and epoch switch
    # ------------------------------------------------------------------

    def _arm_timer(self) -> None:
        """(Re)arm the leader-suspicion timer while work is pending."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.pending and self.mode == MODE_FAST:
            epoch_at_arm = self.epoch
            self._timer = self._schedule(
                self.timeout, lambda: self._on_timeout(epoch_at_arm)
            )

    def _on_timeout(self, epoch: int) -> None:
        if epoch != self.epoch or self.mode != MODE_FAST or not self.pending:
            return
        self._complain(epoch)

    def _complain(self, epoch: int) -> None:
        if epoch in self._complained:
            return
        self._complained.add(epoch)
        self.stats["complaints_sent"] += 1
        msg = AbcComplain(epoch, self.me)
        self._broadcast(msg)
        self._on_complain(self.me, msg)

    def _on_complain(self, sender: int, msg: AbcComplain) -> None:
        if msg.complainer != sender or msg.epoch < self.epoch:
            return
        if msg.epoch > self.epoch + MAX_EPOCH_AHEAD:
            return  # far-future epochs only come from Byzantine senders
        voters = self._complaints.setdefault(msg.epoch, set())
        if sender in voters:
            return
        voters.add(sender)
        if len(voters) >= self.t + 1 and msg.epoch not in self._complained:
            self._complain(msg.epoch)  # join: an honest replica complained
        if len(voters) >= 2 * self.t + 1:
            sid = f"switch/{msg.epoch}"
            for dest, out in self.aba.propose(sid, 1):
                self._route(dest, out)

    def _on_switch_decided(self, sid: str, value: int) -> None:
        if not sid.startswith("switch/") or value != 1:
            return
        epoch = int(sid.split("/", 1)[1])
        # Bounded: one entry per *decided* ABA instance, each of which
        # needed 2t+1 participating replicas — not attacker-drivable.
        # repro-lint: disable=C304,T404
        self._switch_decided.add(epoch)
        self._enter_recovery(epoch)

    def _enter_recovery(self, epoch: int) -> None:
        if epoch < self.epoch or epoch in self._final_sent:
            return
        self.mode = MODE_RECOVERY
        self.stats["epoch_changes"] += 1
        self._final_sent.add(epoch)
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        final = AbcEpochFinal(
            epoch=epoch,
            sender=self.me,
            delivered_seq=self.next_deliver - 1,
            certificates=tuple(
                cert for _, cert in sorted(self._certificates.items())
            ),
            pending=tuple(sorted(self.pending.items())),
        )
        signed = (final, self.crypto.sign(_final_signing_input(final)))
        self._broadcast(signed)
        self._on_epoch_final(self.me, signed)
        # If the next leader stalls, complain about the next epoch.
        if self._recovery_timer is not None:
            self._recovery_timer.cancel()
        self._recovery_timer = self._schedule(
            self.timeout * 2, lambda: self._recovery_stalled(epoch)
        )

    def _recovery_stalled(self, epoch: int) -> None:
        if self.epoch > epoch or self.mode == MODE_FAST:
            return
        self._complain(epoch + 1)

    def _on_epoch_final(self, sender: int, msg: object) -> None:
        if not (isinstance(msg, tuple) and len(msg) == 2):
            return
        final, signature = msg
        if not isinstance(final, AbcEpochFinal) or final.sender != sender:
            return
        # Window check first: it reads only final.epoch, so stale/far-future
        # spam is shed before paying for a full signature verification.
        if final.epoch < self.epoch or final.epoch > self.epoch + MAX_EPOCH_AHEAD:
            return  # stale finals are useless; far-future ones are Byzantine
        if not self.crypto.verify(sender, _final_signing_input(final), signature):
            return
        pool = self._finals.setdefault(final.epoch, {})
        if sender in pool:
            return
        pool[sender] = (final, signature)  # signed tuple, forwarded in NEW_EPOCH
        next_epoch = final.epoch + 1
        if (
            len(pool) >= self.n - self.t
            and next_epoch % self.n == self.me
            and next_epoch not in self._new_epoch_done
            and next_epoch > self.epoch
        ):
            self._new_epoch_done.add(next_epoch)
            finals = tuple(pool.values())[: self.n - self.t]
            new_epoch = AbcNewEpoch(
                epoch=next_epoch,
                certificates=finals,  # carries the signed finals themselves
                start_seq=0,          # recomputed by every validator
            )
            self._broadcast(new_epoch)
            self._on_new_epoch(self.me, new_epoch)

    def _on_new_epoch(self, sender: int, msg: AbcNewEpoch) -> None:
        if msg.epoch <= self.epoch:
            return
        if sender != msg.epoch % self.n:
            return
        adopted, start_seq, merged_pending = self._validate_new_epoch(msg)
        if adopted is None:
            return
        # Explicit local bound on the certificate-validated state installed
        # below: _validate_new_epoch clamps every final's delivered-seq
        # claim to its own certificate evidence, so a legitimate NEW_EPOCH
        # can never open a window wider than the fast path's delivery
        # window — refuse anything larger outright instead of installing
        # unbounded per-slot state.
        if len(adopted) > MAX_SEQ_AHEAD or start_seq > self.next_deliver + MAX_SEQ_AHEAD:
            self.stats["out_of_window"] += 1
            return
        # Install the certified prefix.
        for seq in sorted(adopted):
            cert = adopted[seq]
            self._payload_by_digest[cert.digest] = (
                derive_request_id(cert.payload),
                cert.payload,
            )
            self._committed[seq] = cert.digest
            self._certificates[seq] = cert
        for seq in range(self.next_deliver, start_seq):
            if seq not in self._committed:
                self._skipped.add(seq)
        self._advance_delivery(fast=False)
        if self.next_deliver < start_seq:
            self.next_deliver = start_seq
        # Enter the new epoch.
        self.epoch = msg.epoch
        self.mode = MODE_FAST
        self._next_order_seq = max(self._next_order_seq, start_seq)
        for rid, payload in merged_pending.items():
            if rid in self.delivered_ids:
                continue
            if len(self.pending) >= MAX_PENDING_REQUESTS:
                self.stats["initiates_dropped"] += 1
                break
            self.pending.setdefault(rid, payload)
        if self._recovery_timer is not None:
            self._recovery_timer.cancel()
            self._recovery_timer = None
        self._arm_timer()
        if self.me == self.leader:
            # The backlog that piled up during the switch is re-framed
            # into fresh batches rather than ordered one slot per request.
            self._order_pending(rebatch=True)
        # Replay fast-path traffic that arrived while we lagged behind the
        # epoch switch; anything still ahead of us is re-buffered.
        self._replay_buffered()

    def _validate_new_epoch(
        self, msg: AbcNewEpoch
    ) -> Tuple[Optional[Dict[int, PrepareCertificate]], int, Dict[str, bytes]]:
        """Revalidate a NEW_EPOCH deterministically from its signed finals."""
        prev_epoch = msg.epoch - 1
        candidates: List[Tuple[AbcEpochFinal, bytes]] = []
        for item in msg.certificates:
            if not (isinstance(item, tuple) and len(item) == 2):
                continue
            final, signature = item
            if not isinstance(final, AbcEpochFinal):
                continue
            if final.epoch != prev_epoch:
                continue
            if not 0 <= final.sender < self.n:
                continue
            candidates.append((final, signature))
        # Amortized verification: every structurally-valid final is checked
        # in one crypto-plane task instead of one verify call per final.
        verdicts = self.crypto.verify_many(
            [
                (self.auth_public[final.sender], _final_signing_input(final), sig)
                for final, sig in candidates
            ]
        )
        seen: Set[int] = set()
        valid_finals: List[AbcEpochFinal] = []
        for (final, _sig), ok in zip(candidates, verdicts):
            if ok and final.sender not in seen:
                seen.add(final.sender)
                valid_finals.append(final)
        if len(valid_finals) < self.n - self.t:
            return None, 0, {}
        adopted: Dict[int, PrepareCertificate] = {}
        merged_pending: Dict[str, bytes] = {}
        delivered_claim = 0
        for final in valid_finals:
            for cert in final.certificates:
                if not self._validate_certificate(cert):
                    continue
                current = adopted.get(cert.seq)
                if current is None or cert.epoch > current.epoch:
                    adopted[cert.seq] = cert
            for rid, payload in final.pending:
                merged_pending.setdefault(rid, payload)
            # A final's delivered-seq claim counts only up to its own
            # certificate evidence: honest replicas carry certificates for
            # every slot at or above their watermark, so clamping changes
            # nothing for them, while a Byzantine final cannot skip the
            # sequence space ahead with a bare delivered_seq number.
            evidence = max((c.seq for c in final.certificates), default=-1)
            delivered_claim = max(
                delivered_claim, min(final.delivered_seq, evidence) + 1
            )
        start_seq = max(adopted) + 1 if adopted else 0
        start_seq = max(start_seq, delivered_claim)
        return adopted, start_seq, merged_pending

    def _validate_certificate(self, cert: PrepareCertificate) -> bool:
        if not isinstance(cert, PrepareCertificate):
            return False
        if cert.digest != request_digest(cert.epoch, cert.seq, cert.payload):
            return False
        seen: Set[int] = set()
        data = _prepare_signing_input(cert.epoch, cert.seq, cert.digest)
        items = []
        for signer, signature in cert.signatures:
            if signer in seen or not 0 <= signer < self.n:
                continue
            seen.add(signer)
            items.append((self.auth_public[signer], data, signature))
        # One amortized crypto-plane task checks the whole prepare pool.
        # Certificates need the full n-t intersection quorum (see
        # _on_prepare); accepting 2t+1 here would admit certificates a
        # Byzantine signer could duplicate for a conflicting digest.
        return sum(self.crypto.verify_many(items)) >= self.n - self.t

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _broadcast(self, msg: object) -> None:
        for dest in range(self.n):
            if dest != self.me:
                self._send(dest, msg)

    def _route(self, dest: int, msg: object) -> None:
        if dest == -1:
            self._broadcast(msg)
            # ABA components expect their own broadcast handled via
            # self-processing inside the component, which they already do.
        elif dest == self.me:
            self.on_message(self.me, msg)
        else:
            self._send(dest, msg)
