"""C-rules: crypto hygiene (DESIGN.md §5c).

KeyTrap (Heftrig et al. 2024) showed DNSSEC validators are exploitable
through unbounded work on attacker-controlled collections; the classic
timing-oracle and key-material-entropy bugs round out the family.
"""

from __future__ import annotations

import ast
import re
from typing import Optional

from repro.lint.framework import SCOPE_CRYPTO, SCOPE_HANDLERS, Rule, register

#: Identifier fragments that name secret material.  Deliberately excludes
#: bare "signature"/"share": assembled signatures and received shares are
#: public values whose comparison is part of verification.
_SECRET_NAME_RE = re.compile(
    r"(^|_)(secret|private|password|passwd|mac|hmac|token)(_|$)", re.IGNORECASE
)

#: Handler names whose inputs arrive from untrusted peers.
_HANDLER_NAME_RE = re.compile(r"^(on_message|_on_[a-z0-9_]+)$")

#: Comparing against one of these identifiers counts as a bound check.
_BOUND_NAME_RE = re.compile(r"(MAX|LIMIT|BOUND|CAP)", re.IGNORECASE)


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class SecretEqualityRule(Rule):
    """C301: ``==`` on secret material instead of hmac.compare_digest."""

    rule_id = "C301"
    summary = "non-constant-time comparison of secret material"
    scope = SCOPE_CRYPTO

    def visit_Compare(self, node: ast.Compare) -> None:
        if any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            for side in [node.left] + list(node.comparators):
                name = _terminal_identifier(side)
                if name and _SECRET_NAME_RE.search(name):
                    self.report(
                        node,
                        f"== / != on {name!r} leaks a timing oracle; use "
                        "hmac.compare_digest",
                    )
                    break
        self.generic_visit(node)


@register
class SecretInOutputRule(Rule):
    """C302: secret-bearing names interpolated into output/log strings."""

    rule_id = "C302"
    summary = "secret material in a log/format string"
    scope = SCOPE_CRYPTO

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        for value in node.values:
            if isinstance(value, ast.FormattedValue):
                name = _terminal_identifier(value.value)
                if name and _SECRET_NAME_RE.search(name):
                    self.report(
                        node,
                        f"f-string interpolates secret {name!r}; log a digest "
                        "or redact it",
                    )
                    break
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        is_print = resolved == "print"
        is_log = resolved is not None and (
            resolved.startswith("logging.")
            or resolved.split(".")[-1]
            in ("debug", "info", "warning", "error", "exception", "critical")
        )
        if is_print or is_log:
            for arg in node.args:
                name = _terminal_identifier(arg)
                if name and _SECRET_NAME_RE.search(name):
                    self.report(
                        node,
                        f"secret {name!r} passed to {'print' if is_print else 'a logger'};"
                        " log a digest or redact it",
                    )
                    break
        self.generic_visit(node)


@register
class SeededRandomForKeysRule(Rule):
    """C303: the ``random`` module anywhere key material is made."""

    rule_id = "C303"
    summary = "random module used in a crypto path (use secrets)"
    scope = SCOPE_CRYPTO

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved is not None and (
            resolved == "random.Random" or resolved.startswith("random.")
        ):
            self.report(
                node,
                f"{resolved} is a PRNG with guessable state; key material "
                "must come from the secrets module",
            )
        self.generic_visit(node)


@register
class UnboundedHandlerGrowthRule(Rule):
    """C304: handler grows a collection with no visible bound (KeyTrap).

    Heuristic: inside ``on_message`` / ``_on_*`` methods, flag
    ``self.<attr>...append/add/setdefault/insert`` calls and
    ``self.<attr>[...] = ...`` stores when the enclosing function body
    contains neither a ``len(...)`` comparison nor a comparison against a
    ``MAX``/``LIMIT``/``BOUND``/``CAP`` name.  Bounds enforced elsewhere
    need an inline suppression with a justification.
    """

    rule_id = "C304"
    summary = "unbounded collection growth in a message handler"
    scope = SCOPE_HANDLERS

    _GROW_METHODS = {"append", "add", "setdefault", "insert", "appendleft", "extend"}

    def run(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _HANDLER_NAME_RE.match(node.name):
                    self._check_handler(node)

    def _check_handler(self, func: ast.AST) -> None:
        if self._has_bound_check(func):
            return
        reported_lines: set = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                target = self._growth_target(node)
                if target is not None and node.lineno not in reported_lines:
                    reported_lines.add(node.lineno)
                    self.report(
                        node,
                        f"handler grows {target} with no bound in sight; an "
                        "adversary can drive memory/work unboundedly (KeyTrap)",
                    )
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Subscript) and self._rooted_at_self(
                        tgt.value
                    ):
                        self.report(
                            node,
                            "handler stores into a self-attached mapping with "
                            "no bound in sight (KeyTrap)",
                        )

    def _growth_target(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if not isinstance(func, ast.Attribute) or func.attr not in self._GROW_METHODS:
            return None
        chain = func.value
        # setdefault(...).append(...) — walk through the inner call.
        while isinstance(chain, ast.Call) and isinstance(chain.func, ast.Attribute):
            chain = chain.func.value
        if self._rooted_at_self(chain):
            return ast.unparse(func.value) if hasattr(ast, "unparse") else "a collection"
        return None

    def _rooted_at_self(self, node: ast.AST) -> bool:
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            node = node.value
        return isinstance(node, ast.Name) and node.id == "self"

    def _has_bound_check(self, func: ast.AST) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Compare):
                continue
            for side in [node.left] + list(node.comparators):
                for sub in ast.walk(side):
                    if (
                        isinstance(sub, ast.Call)
                        and isinstance(sub.func, ast.Name)
                        and sub.func.id == "len"
                    ):
                        return True
                    name = _terminal_identifier(sub)
                    if name and _BOUND_NAME_RE.search(name):
                        return True
        return False
