"""``repro lint``: AST-based determinism & protocol-safety analyzer.

See DESIGN.md §5c for the rule catalog and the ratchet workflow.
"""

from repro.lint.framework import (
    Finding,
    LintConfig,
    load_rules,
    run_file,
    run_paths,
    run_source,
)

__all__ = [
    "Finding",
    "LintConfig",
    "load_rules",
    "run_file",
    "run_paths",
    "run_source",
]
