"""D-rules: replica-determinism checks (DESIGN.md §5c).

Atomic broadcast only yields G1 — every honest replica computes the
identical response wire, zone digest, and signing input for the same
delivered sequence — if the execute path is a pure function of delivered
state.  These rules mechanically forbid the ways Python code silently
stops being one.
"""

from __future__ import annotations

import ast
import re
from typing import Optional, Set

from repro.lint.framework import SCOPE_ALL, SCOPE_DETERMINISTIC, Rule, register

WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

ENTROPY_CALLS = {
    "os.urandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: Identifiers that name protocol sequence state; float arithmetic on
#: them rounds differently than the integer protocol spec.
_SEQ_NAME_RE = re.compile(r"(^|_)(serial|seq|seqno|sequence|epoch)(_|$|s$)")


def _terminal_identifier(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class WallClockRule(Rule):
    """D101: wall-clock reads in deterministic modules."""

    rule_id = "D101"
    summary = "wall-clock read in a deterministic (replica execute) path"
    scope = SCOPE_DETERMINISTIC

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved in WALL_CLOCK_CALLS:
            self.report(
                node,
                f"call to {resolved} breaks replica determinism; derive time "
                "from delivered state or the simulated node clock",
            )
        self.generic_visit(node)


@register
class EntropyRule(Rule):
    """D102: unseeded entropy sources in deterministic modules."""

    rule_id = "D102"
    summary = "entropy source (os.urandom/uuid/secrets/module random) in a deterministic path"
    scope = SCOPE_DETERMINISTIC

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved is not None:
            if resolved in ENTROPY_CALLS or resolved.startswith("secrets."):
                self.report(
                    node,
                    f"call to {resolved} injects entropy into a deterministic "
                    "path; all randomness must flow from the scenario seed",
                )
            elif resolved.startswith("random.") and resolved != "random.Random":
                self.report(
                    node,
                    f"module-level {resolved} uses the global (unseeded) RNG; "
                    "use an explicitly seeded random.Random instance",
                )
        self.generic_visit(node)


@register
class UnorderedIterationRule(Rule):
    """D103: iterating a set/frozenset where order reaches the output.

    ``sorted(...)`` is the sanctioned fix: ``for x in sorted(s)`` never
    matches because the loop iterates the ``sorted`` call, not the set.
    """

    rule_id = "D103"
    summary = "iteration over an unordered set feeding ordered output"
    scope = SCOPE_DETERMINISTIC

    _CONSUMERS = {"list", "tuple"}

    def run(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(node)

    def _check_function(self, func: ast.AST) -> None:
        set_vars = self._collect_set_vars(func)
        for node in ast.walk(func):
            if isinstance(node, ast.For):
                if self._is_setish(node.iter, set_vars):
                    self.report(
                        node.iter,
                        "for-loop over an unordered set; wrap in sorted() so "
                        "every replica sees the same order",
                    )
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if self._is_setish(gen.iter, set_vars):
                        self.report(
                            gen.iter,
                            "comprehension over an unordered set; wrap in "
                            "sorted() so every replica sees the same order",
                        )
            elif isinstance(node, ast.Call):
                self._check_consumer(node, set_vars)

    def _check_consumer(self, node: ast.Call, set_vars: Set[str]) -> None:
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            name = "join"
        if name in self._CONSUMERS or name == "join":
            for arg in node.args[:1]:
                if self._is_setish(arg, set_vars):
                    self.report(
                        arg,
                        f"{name}() materializes an unordered set into a "
                        "sequence; wrap in sorted()",
                    )

    def _collect_set_vars(self, func: ast.AST) -> Set[str]:
        """Names whose every assignment in this function is set-valued."""
        assigned_setish: Set[str] = set()
        assigned_other: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
                for target in targets:
                    if self._is_setish(node.value, assigned_setish):
                        assigned_setish.add(target.id)
                    else:
                        assigned_other.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if node.value is not None and self._is_setish(node.value, assigned_setish):
                    assigned_setish.add(node.target.id)
                else:
                    assigned_other.add(node.target.id)
        return assigned_setish - assigned_other

    def _is_setish(self, node: ast.AST, set_vars: Set[str]) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name) and node.id in set_vars:
            return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_setish(node.left, set_vars) or self._is_setish(
                node.right, set_vars
            )
        return False


@register
class BuiltinHashRule(Rule):
    """D104: builtin hash() outside __hash__ (str/bytes hashing is salted)."""

    rule_id = "D104"
    summary = "salted builtin hash() in a deterministic path"
    scope = SCOPE_DETERMINISTIC

    def run(self, tree: ast.Module) -> None:
        self._in_dunder_hash = 0
        self.visit(tree)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name == "__hash__":
            self._in_dunder_hash += 1
            self.generic_visit(node)
            self._in_dunder_hash -= 1
        else:
            self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        if (
            self._in_dunder_hash == 0
            and isinstance(node.func, ast.Name)
            and self.ctx.imports.resolve(node.func) == "hash"
        ):
            self.report(
                node,
                "builtin hash() is salted per process (PYTHONHASHSEED); use "
                "hashlib for anything that crosses the wire or keys state",
            )
        self.generic_visit(node)


@register
class FloatSequenceRule(Rule):
    """D105: float arithmetic on serials / sequence numbers."""

    rule_id = "D105"
    summary = "float arithmetic on a serial/sequence number"
    scope = SCOPE_DETERMINISTIC

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, ast.Div):
            for side in (node.left, node.right):
                name = _terminal_identifier(side)
                if name and _SEQ_NAME_RE.search(name):
                    self.report(
                        node,
                        f"true division involving {name!r} produces a float; "
                        "serials and sequence numbers are integers (use //)",
                    )
                    break
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id == "float":
            for arg in node.args:
                name = _terminal_identifier(arg)
                if name and _SEQ_NAME_RE.search(name):
                    self.report(
                        node,
                        f"float({name}) on a protocol sequence value; keep "
                        "serials integral end to end",
                    )
                    break
        self.generic_visit(node)


@register
class SharedDefaultRngRule(Rule):
    """D106: random.Random constructed as a shared default.

    A ``random.Random`` in a function default, a dataclass
    ``default_factory`` lambda, or at module scope gives every caller /
    instance the same stream regardless of the scenario seed — exactly
    the ``FaultInjector`` bug class.  Runs repo-wide.
    """

    rule_id = "D106"
    summary = "shared default random.Random (same stream for every instance)"
    scope = SCOPE_ALL

    _MSG = (
        "random.Random as a shared default gives every instance the same "
        "stream regardless of the scenario seed; thread a seed parameter "
        "through instead"
    )

    def run(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is not None and self._is_random_call(value):
                    self.report(value, "module-level " + self._MSG)
        self.visit(tree)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        for default in list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]:
            for sub in ast.walk(default):
                if self._is_random_call(sub):
                    self.report(sub, "argument-default " + self._MSG)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.ctx.imports.resolve(node.func)
        if resolved in ("dataclasses.field", "field"):
            for keyword in node.keywords:
                if keyword.arg != "default_factory":
                    continue
                value = keyword.value
                if self._resolves_to_random(value):
                    self.report(value, "default_factory " + self._MSG)
                elif isinstance(value, ast.Lambda):
                    for sub in ast.walk(value.body):
                        if self._is_random_call(sub):
                            self.report(sub, "default_factory " + self._MSG)
        self.generic_visit(node)

    def _is_random_call(self, node: ast.AST) -> bool:
        return isinstance(node, ast.Call) and self._resolves_to_random(node.func)

    def _resolves_to_random(self, node: ast.AST) -> bool:
        return self.ctx.imports.resolve(node) == "random.Random"
