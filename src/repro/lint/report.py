"""Rendering for ``repro lint`` findings (text and JSON)."""

from __future__ import annotations

import json
from typing import List, Sequence, Type

from repro.lint.framework import Finding, Rule


def render_text(findings: Sequence[Finding]) -> str:
    lines: List[str] = [f.render() for f in findings]
    if findings:
        lines.append(f"{len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in findings
        ],
        indent=2,
    )


def render_rule_catalog(rules: Sequence[Type[Rule]]) -> str:
    lines = []
    for rule in rules:
        lines.append(f"{rule.rule_id}  [{rule.scope:>13}]  {rule.summary}")
    return "\n".join(lines)
