"""Baseline + ratchet engine for ``repro lint``.

The baseline file records how many findings of each rule each file is
*allowed* to have.  The ratchet is one-way:

* a finding not covered by the baseline **fails** the check;
* a per-(file, rule) count above its baseline entry **fails**;
* a count *below* its entry is a **stale** entry — also a failure, with
  instructions to run ``--update-baseline`` so the ceiling ratchets down
  and the fix can never silently regress.

``--update-baseline`` refuses to grow any entry unless ``--allow-growth``
is passed explicitly (growth should be a reviewed decision, not a reflex).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

from repro.lint.framework import Finding

BASELINE_VERSION = 1

Counts = Dict[str, Dict[str, int]]


class BaselineError(Exception):
    """Malformed baseline file."""


def collect_counts(findings: Sequence[Finding]) -> Counts:
    """Per-file, per-rule finding counts."""
    counts: Counts = {}
    for finding in findings:
        per_file = counts.setdefault(finding.path, {})
        per_file[finding.rule] = per_file.get(finding.rule, 0) + 1
    return counts


def load_baseline(path: Path) -> Counts:
    if not path.is_file():
        return {}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected a version-{BASELINE_VERSION} baseline object"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise BaselineError(f"{path}: 'entries' must be an object")
    return {
        str(file): {str(rule): int(count) for rule, count in rules.items()}
        for file, rules in entries.items()
    }


def save_baseline(path: Path, counts: Counts) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "entries": {
            file: {rule: counts[file][rule] for rule in sorted(counts[file])}
            for file in sorted(counts)
            if counts[file]
        },
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def check_against_baseline(
    findings: Sequence[Finding], baseline: Counts
) -> List[str]:
    """Problems that must fail the check; empty list means clean."""
    problems: List[str] = []
    current = collect_counts(findings)
    for file in sorted(set(current) | set(baseline)):
        current_rules = current.get(file, {})
        baseline_rules = baseline.get(file, {})
        for rule in sorted(set(current_rules) | set(baseline_rules)):
            have = current_rules.get(rule, 0)
            allowed = baseline_rules.get(rule, 0)
            if have > allowed:
                examples = [
                    f.render() for f in findings if f.path == file and f.rule == rule
                ]
                problems.append(
                    f"{file}: {rule} has {have} finding(s), baseline allows "
                    f"{allowed} — new violation(s):\n    "
                    + "\n    ".join(examples)
                )
            elif have < allowed:
                problems.append(
                    f"{file}: {rule} baseline entry is stale ({allowed} allowed, "
                    f"{have} found) — run 'repro lint --update-baseline' to "
                    "ratchet it down"
                )
    return problems


def update_baseline(
    findings: Sequence[Finding],
    old: Counts,
    allow_growth: bool = False,
) -> Counts:
    """New baseline from current findings; refuses growth by default."""
    new = collect_counts(findings)
    if not allow_growth:
        grown: List[str] = []
        for file, rules in new.items():
            for rule, count in rules.items():
                if count > old.get(file, {}).get(rule, 0):
                    grown.append(f"{file}: {rule} {old.get(file, {}).get(rule, 0)} -> {count}")
        if grown:
            raise BaselineError(
                "refusing to grow the baseline (fix the findings or pass "
                "--allow-growth):\n  " + "\n  ".join(sorted(grown))
            )
    return new
