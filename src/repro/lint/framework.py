"""Rule framework for the ``repro lint`` static analyzer.

The analyzer enforces the repository's protocol-correctness contract
(DESIGN.md §5c): replicas are deterministic state machines, so the
execute/broadcast paths must not read wall clocks or entropy, iterate
unordered collections into ordered output, or do float arithmetic on
sequence numbers; crypto paths must compare secrets in constant time and
bound work on untrusted collections (KeyTrap).

Everything here is stdlib-only (``ast`` + ``tokenize``-free comment
scanning); rules are small :class:`Rule` visitors registered with
:func:`register` and scoped to module families via fnmatch patterns.

Suppressions::

    risky_call()  # repro-lint: disable=D101
    # repro-lint: disable=D103        (on the line above also works)
    # repro-lint: disable-file=C304   (anywhere in the file: whole file)

A suppression comment should carry a justification after the rule list.
"""

from __future__ import annotations

import ast
import fnmatch
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Type

# -- scopes -------------------------------------------------------------------

#: Modules whose execute/broadcast paths feed the replicated state machine:
#: G1 (all honest replicas agree) requires them to be bit-deterministic.
SCOPE_DETERMINISTIC = "deterministic"
#: Modules holding key material / authenticators.
SCOPE_CRYPTO = "crypto"
#: Modules with network-facing message handlers (KeyTrap-style bounds).
SCOPE_HANDLERS = "handlers"
#: Everything.
SCOPE_ALL = "all"

DEFAULT_SCOPE_PATTERNS: Dict[str, Tuple[str, ...]] = {
    SCOPE_DETERMINISTIC: (
        "repro.core.replica",
        "repro.core.service",
        "repro.broadcast.*",
        "repro.dns.zone",
    ),
    SCOPE_CRYPTO: (
        "repro.crypto.*",
        "repro.dns.tsig",
        "repro.dns.dnssec",
        "repro.core.keytool",
    ),
    SCOPE_HANDLERS: (
        "repro.broadcast.*",
        "repro.crypto.protocols",
        "repro.core.replica",
    ),
    SCOPE_ALL: ("*",),
}


@dataclass
class LintConfig:
    """Analyzer configuration (normally loaded from pyproject.toml)."""

    scope_patterns: Dict[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SCOPE_PATTERNS)
    )
    strict_modules: Tuple[str, ...] = ()
    #: fnmatch patterns selecting modules for ``--taint`` analysis; empty
    #: means the taint engine's built-in protocol-surface default.
    taint_modules: Tuple[str, ...] = ()
    #: fnmatch patterns scoping ``--quorum`` threshold verification;
    #: empty means the analyzer's built-in broadcast/crypto default.
    quorum_modules: Tuple[str, ...] = ()
    #: fnmatch patterns scoping ``--races`` yield-point verification;
    #: empty means every repro module.
    races_modules: Tuple[str, ...] = ()

    @classmethod
    def from_pyproject(cls, pyproject: Path) -> "LintConfig":
        config = cls()
        if not pyproject.is_file():
            return config
        try:
            import tomllib
        except ImportError:  # pragma: no cover - py3.10
            return config
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        section = data.get("tool", {}).get("repro-lint", {})
        for scope in (SCOPE_DETERMINISTIC, SCOPE_CRYPTO, SCOPE_HANDLERS):
            key = f"{scope}_modules"
            if key in section:
                config.scope_patterns[scope] = tuple(section[key])
        config.strict_modules = tuple(section.get("strict_modules", ()))
        config.taint_modules = tuple(section.get("taint_modules", ()))
        config.quorum_modules = tuple(section.get("quorum_modules", ()))
        config.races_modules = tuple(section.get("races_modules", ()))
        return config

    def module_in_scope(self, module: str, scope: str) -> bool:
        patterns = self.scope_patterns.get(scope, ())
        return any(fnmatch.fnmatchcase(module, pat) for pat in patterns)


# -- findings -----------------------------------------------------------------


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


# -- rule registry ------------------------------------------------------------


class Rule(ast.NodeVisitor):
    """Base class: one instance per (rule, file) pass."""

    rule_id: str = ""
    summary: str = ""
    scope: str = SCOPE_ALL

    def __init__(self, ctx: "FileContext") -> None:
        self.ctx = ctx

    def report(self, node: ast.AST, message: str) -> None:
        self.ctx.add(
            self.rule_id,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0),
            message,
        )

    def run(self, tree: ast.Module) -> None:
        self.visit(tree)


RULES: List[Type[Rule]] = []


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global catalog."""
    if not rule_cls.rule_id:
        raise ValueError("rule must define rule_id")
    if any(existing.rule_id == rule_cls.rule_id for existing in RULES):
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    RULES.append(rule_cls)
    return rule_cls


def load_rules() -> List[Type[Rule]]:
    """Import the rule modules (populating :data:`RULES`) and return them."""
    from repro.lint import asyncsafety, cryptohygiene, determinism  # noqa: F401

    return sorted(RULES, key=lambda rule: rule.rule_id)


# -- suppressions -------------------------------------------------------------

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Z0-9, ]+)")
_SUPPRESS_FILE_RE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Z0-9, ]+)")

#: Rule id of the stale-suppression finding itself (always active).
STALE_SUPPRESSION_RULE = "S101"


@dataclass
class Suppression:
    """One ``repro-lint: disable`` comment and its usage record.

    ``covered`` is the set of source lines the comment shields (empty for
    whole-file ``disable-file=`` comments, which shield everything);
    ``used`` accumulates the rule ids that actually had a finding
    suppressed, so stale comments can be reported and ratcheted away.
    """

    line: int
    rules: Tuple[str, ...]
    covered: Tuple[int, ...]  # () == whole file
    used: Set[str] = field(default_factory=set)

    def shields(self, rule: str, line: int) -> bool:
        return rule in self.rules and (not self.covered or line in self.covered)


def parse_suppression_comments(source: str) -> List[Suppression]:
    """All suppression comments in ``source``, in line order.

    A ``disable=`` comment covers its own line and, when it is the only
    thing on the line, the line below (so a suppression can sit above a
    long statement).  ``disable-file=`` covers the whole file.  The source
    is tokenized so only genuine comments count — a docstring *showing*
    the suppression syntax (like this module's) is not a suppression.
    """
    import io
    import tokenize

    out: List[Suppression] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            lineno = tok.start[0]
            match = _SUPPRESS_FILE_RE.search(tok.string)
            if match:
                rules = tuple(
                    r.strip() for r in match.group(1).split(",") if r.strip()
                )
                out.append(Suppression(line=lineno, rules=rules, covered=()))
                continue
            match = _SUPPRESS_RE.search(tok.string)
            if not match:
                continue
            rules = tuple(
                r.strip() for r in match.group(1).split(",") if r.strip()
            )
            covered = [lineno]
            if tok.line.lstrip().startswith("#"):
                covered.append(lineno + 1)  # comment-only line covers the next
            out.append(
                Suppression(line=lineno, rules=rules, covered=tuple(covered))
            )
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass  # unparseable tail: keep the comments collected so far
    return out


def parse_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Legacy view: line -> suppressed rules, plus whole-file suppressions."""
    per_line: Dict[int, Set[str]] = {}
    whole_file: Set[str] = set()
    for sup in parse_suppression_comments(source):
        if not sup.covered:
            whole_file.update(sup.rules)
        else:
            for line in sup.covered:
                per_line.setdefault(line, set()).update(sup.rules)
    return per_line, whole_file


def stale_suppression_findings(
    ctx: "FileContext", active_rules: Iterable[str]
) -> List[Finding]:
    """S101 findings for suppression comments that shielded nothing.

    A comment naming a rule that was not part of this run (e.g. a T-rule
    suppression when ``--taint`` is off) is exempt — staleness can only be
    judged for rules that actually executed.
    """
    active = set(active_rules)
    out: List[Finding] = []
    for sup in ctx.suppressions:
        for rule in sup.rules:
            if rule in sup.used or rule not in active:
                continue
            out.append(
                Finding(
                    STALE_SUPPRESSION_RULE,
                    ctx.path,
                    sup.line,
                    0,
                    f"stale suppression: no {rule} finding is shielded by "
                    "this comment any more; delete it so the suppression "
                    "set ratchets down",
                )
            )
    return out


def apply_suppressions(
    findings: Sequence[Finding], contexts: Dict[str, "FileContext"]
) -> List[Finding]:
    """Filter externally-produced findings (e.g. taint) through per-file
    suppression comments, marking the matching comments as used."""
    kept: List[Finding] = []
    for finding in findings:
        ctx = contexts.get(finding.path)
        if ctx is not None and ctx.suppress(finding.rule, finding.line):
            continue
        kept.append(finding)
    return kept


# -- import resolution --------------------------------------------------------


class ImportMap:
    """Resolve names/attribute chains to dotted import paths.

    ``import time`` makes ``time.time`` resolve to ``"time.time"``;
    ``from os import urandom as u`` makes ``u`` resolve to
    ``"os.urandom"``.  Unimported bare names resolve to themselves, which
    lets rules match builtins like ``hash``/``set`` unless shadowed.
    """

    def __init__(self, tree: ast.Module, module: str) -> None:
        self.aliases: Dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else module
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".", 1)[0]
                        self.aliases[top] = top
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix = package
                    for _ in range(node.level - 1):
                        prefix = prefix.rsplit(".", 1)[0] if "." in prefix else ""
                    base = f"{prefix}.{base}".strip(".") if base else prefix
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self.aliases[bound] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path for a Name/Attribute chain, or None."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


# -- per-file context & runner ------------------------------------------------


class FileContext:
    """Everything a rule needs to analyze one file."""

    def __init__(
        self,
        path: str,
        module: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
    ) -> None:
        self.path = path
        self.module = module
        self.source = source
        self.tree = tree
        self.config = config
        self.imports = ImportMap(tree, module)
        self.findings: List[Finding] = []
        self.suppressions: List[Suppression] = parse_suppression_comments(source)

    def suppress(self, rule: str, line: int) -> bool:
        """True if (rule, line) is shielded; marks the comment as used."""
        hit = False
        for sup in self.suppressions:
            if sup.shields(rule, line):
                sup.used.add(rule)
                hit = True
        return hit

    def add(self, rule: str, line: int, col: int, message: str) -> None:
        if self.suppress(rule, line):
            return
        self.findings.append(Finding(rule, self.path, line, col, message))


def find_repo_root(start: Optional[Path] = None) -> Path:
    """Anchor the analyzer to the repository root, not the CWD.

    Walks up from ``start`` (default: the CWD) looking for the marker
    files the analyzer reads (``pyproject.toml`` / ``lint-baseline.json``)
    so ``repro lint`` behaves identically from any subdirectory.  Falls
    back to the installed package location (``src`` layout), then the
    start directory itself.
    """
    origin = (start or Path.cwd()).resolve()
    probe = origin if origin.is_dir() else origin.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file() or (
            candidate / "lint-baseline.json"
        ).is_file():
            return candidate
    package_dir = Path(__file__).resolve().parent.parent  # .../src/repro
    for candidate in package_dir.parents:
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def module_name_for_path(path: Path) -> str:
    """Dotted module path, derived from the ``src/`` layout.

    Files outside ``src/`` (tests, benchmarks, fixtures) get an empty
    module name and therefore only match ``all``-scoped rules.
    """
    parts = path.with_suffix("").parts
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    elif parts and parts[0] in ("tests", "benchmarks"):
        return ""
    else:
        return ""
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def run_source(
    source: str,
    module: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Analyze one source blob as if it were module ``module``."""
    findings, _ctx = run_source_ctx(source, module, path, config=config, rules=rules)
    return findings


def run_source_ctx(
    source: str,
    module: str,
    path: str = "<string>",
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> Tuple[List[Finding], Optional["FileContext"]]:
    """Like :func:`run_source`, also returning the :class:`FileContext`
    (None on syntax error) so callers can inspect suppression usage."""
    config = config if config is not None else LintConfig()
    rules = rules if rules is not None else load_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return (
            [Finding("E000", path, exc.lineno or 1, 0, f"syntax error: {exc.msg}")],
            None,
        )
    ctx = FileContext(path, module, source, tree, config)
    for rule_cls in rules:
        if not config.module_in_scope(module, rule_cls.scope):
            continue
        rule_cls(ctx).run(tree)
    return sorted(ctx.findings, key=lambda f: (f.line, f.col, f.rule)), ctx


def run_file(
    path: Path,
    root: Path,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> List[Finding]:
    """Analyze one file; finding paths are repo-relative POSIX paths."""
    findings, _ctx = run_file_ctx(path, root, config=config, rules=rules)
    return findings


def run_file_ctx(
    path: Path,
    root: Path,
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[Type[Rule]]] = None,
) -> Tuple[List[Finding], Optional["FileContext"]]:
    """Context-returning variant of :func:`run_file`."""
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    module = module_name_for_path(rel)
    source = path.read_text(encoding="utf-8")
    return run_source_ctx(source, module, rel.as_posix(), config=config, rules=rules)


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            out.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            out.add(path)
    return sorted(out)


def run_paths(
    paths: Sequence[Path],
    root: Path,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """Analyze every Python file under ``paths``."""
    findings, _contexts = run_paths_ctx(paths, root, config=config)
    return findings


def run_paths_ctx(
    paths: Sequence[Path],
    root: Path,
    config: Optional[LintConfig] = None,
) -> Tuple[List[Finding], Dict[str, "FileContext"]]:
    """Like :func:`run_paths`, also returning the per-file contexts keyed
    by repo-relative path (for suppression-usage / taint integration)."""
    rules = load_rules()
    findings: List[Finding] = []
    contexts: Dict[str, "FileContext"] = {}
    for file_path in iter_python_files(paths):
        file_findings, ctx = run_file_ctx(file_path, root, config=config, rules=rules)
        findings.extend(file_findings)
        if ctx is not None:
            contexts[ctx.path] = ctx
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)), contexts
