"""A-rules: asyncio safety (DESIGN.md §5c).

The live deployment (:mod:`repro.net.local`) runs every replica on one
event loop; a blocking call inside ``async def`` stalls all replicas at
once (indistinguishable from a network partition), and an unawaited
coroutine silently does nothing.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.lint.framework import SCOPE_ALL, Rule, register

BLOCKING_CALLS = {
    "time.sleep",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "socket.create_connection",
    "urllib.request.urlopen",
}

_AWAIT_WRAPPERS = {
    "asyncio.create_task",
    "asyncio.ensure_future",
    "asyncio.gather",
    "asyncio.wait",
    "asyncio.wait_for",
    "asyncio.shield",
}


@register
class BlockingInAsyncRule(Rule):
    """A201: blocking call directly inside an ``async def`` body."""

    rule_id = "A201"
    summary = "blocking call inside async def"
    scope = SCOPE_ALL

    def run(self, tree: ast.Module) -> None:
        self._async_depth = 0
        self.visit(tree)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._async_depth += 1
        self.generic_visit(node)
        self._async_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # A sync helper nested in a coroutine runs synchronously when
        # called, but flagging it here would double-report call sites.
        saved, self._async_depth = self._async_depth, 0
        self.generic_visit(node)
        self._async_depth = saved

    def visit_Call(self, node: ast.Call) -> None:
        if self._async_depth > 0:
            resolved = self.ctx.imports.resolve(node.func)
            if resolved in BLOCKING_CALLS or (
                resolved is not None and resolved.startswith("requests.")
            ):
                self.report(
                    node,
                    f"{resolved} blocks the event loop (stalls every replica "
                    "sharing it); use the asyncio equivalent",
                )
        self.generic_visit(node)


@register
class UnawaitedCoroutineRule(Rule):
    """A202: module-local coroutine called as a bare statement.

    Only expression statements whose value is a direct call to an
    ``async def`` defined in the same module are flagged — ``await f()``,
    ``asyncio.create_task(f())`` and value-consuming uses never match.
    """

    rule_id = "A202"
    summary = "coroutine created but never awaited or scheduled"
    scope = SCOPE_ALL

    def run(self, tree: ast.Module) -> None:
        async_names = self._collect_async_names(tree)
        if not async_names:
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Expr) or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            name = self._called_name(call)
            if name in async_names:
                self.report(
                    call,
                    f"{name}() returns a coroutine that is never awaited; "
                    "await it or hand it to asyncio.create_task",
                )

    def _collect_async_names(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AsyncFunctionDef):
                names.add(node.name)
        return names

    def _called_name(self, call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return ""
