"""Per-module mypy strictness ratchet.

Modules graduate into ``[tool.repro-lint] strict_modules`` in
pyproject.toml; this checker enforces that every graduated module

1. has a matching ``[[tool.mypy.overrides]]`` entry that turns
   ``check_untyped_defs`` back on and clears ``disable_error_code``
   (the configuration half — checked with stdlib ``tomllib``, always);
2. actually passes mypy under that configuration (the enforcement half —
   run only when mypy is importable; the CI lint job installs it, while
   the hermetic test container does not).

Like the finding baseline, the list is a ratchet: modules are added as
their signatures firm up and never removed.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path
from typing import List, Tuple


def check_strict_config(pyproject: Path) -> Tuple[List[str], List[str]]:
    """(strict_modules, problems) from the pyproject configuration."""
    problems: List[str] = []
    if not pyproject.is_file():
        return [], [f"{pyproject}: not found"]
    try:
        import tomllib
    except ImportError:  # pragma: no cover - py3.10
        return [], []
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    tool = data.get("tool", {})
    strict_modules = list(tool.get("repro-lint", {}).get("strict_modules", []))
    overrides = tool.get("mypy", {}).get("overrides", [])
    by_module = {}
    for entry in overrides:
        modules = entry.get("module", [])
        if isinstance(modules, str):
            modules = [modules]
        for module in modules:
            by_module[module] = entry
    for module in strict_modules:
        entry = by_module.get(module)
        if entry is None:
            problems.append(
                f"strict module {module} has no [[tool.mypy.overrides]] entry"
            )
            continue
        if not entry.get("check_untyped_defs", False):
            problems.append(
                f"strict module {module}: override must set check_untyped_defs = true"
            )
        if entry.get("disable_error_code"):
            problems.append(
                f"strict module {module}: override must not disable error codes"
            )
    return strict_modules, problems


def mypy_available() -> bool:
    return importlib.util.find_spec("mypy") is not None


def run_mypy_strict(root: Path, modules: List[str]) -> Tuple[int, str]:
    """Run mypy over the strict modules; (exit_code, output)."""
    if not modules:
        return 0, "no strict modules configured"
    if not mypy_available():
        return 0, (
            "mypy is not installed in this environment; configuration "
            "checked, type run skipped (CI runs it)"
        )
    cmd = [sys.executable, "-m", "mypy"]
    for module in modules:
        cmd.extend(["-p", module])
    env_path = str(root / "src")
    proc = subprocess.run(
        cmd,
        cwd=root,
        capture_output=True,
        text=True,
        env={**__import__("os").environ, "MYPYPATH": env_path, "PYTHONPATH": env_path},
    )
    return proc.returncode, proc.stdout + proc.stderr


def check(root: Path) -> Tuple[int, str]:
    """Full ratchet check; (exit_code, human-readable report)."""
    pyproject = root / "pyproject.toml"
    modules, problems = check_strict_config(pyproject)
    lines = [f"strict modules: {', '.join(modules) if modules else '(none)'}"]
    if problems:
        lines.extend(f"ERROR: {p}" for p in problems)
        return 1, "\n".join(lines)
    code, output = run_mypy_strict(root, modules)
    lines.append(output.strip())
    return (1 if code else 0), "\n".join(lines)
