"""Key generation and distribution — SINTRA's trusted initialization (§4.3).

A trusted entity runs this once per deployment.  It produces, for each
replica: a share of the zone's threshold signature key, a share of the
coin key used by the agreement protocol, an authentication key pair for
the broadcast layer, and the zone's apex ``KEY`` record.  The private
file of each server is then shipped over a secure channel (the paper used
SSH; here the deployment object is handed to the service builder, and
:func:`save_deployment` / :func:`load_deployment` provide the file form).
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass
from typing import Tuple

from repro.config import ServiceConfig
from repro.crypto.params import demo_threshold_key
from repro.crypto.rsa import RsaKeyPair, RsaPublicKey, generate_rsa_keypair
from repro.crypto.shoup import ThresholdKeyShare, ThresholdPublicKey, deal_threshold_key
from repro.dns.name import Name
from repro.dns.rdata import KEY
from repro.dns.tsig import TsigKey


@dataclass(frozen=True)
class ReplicaKeys:
    """The private material shipped to one replica."""

    index: int                      # replica id, 0-based
    zone_share: ThresholdKeyShare   # share of sk_zone (1-based share index)
    coin_share: ThresholdKeyShare   # share of the agreement coin key
    auth_key: RsaKeyPair            # broadcast-layer authentication key


@dataclass(frozen=True)
class Deployment:
    """Everything the service needs, public and private."""

    config: ServiceConfig
    zone_public: ThresholdPublicKey
    coin_public: ThresholdPublicKey
    auth_public: Tuple[RsaPublicKey, ...]
    replicas: Tuple[ReplicaKeys, ...]
    tsig_key: TsigKey

    @property
    def zone_key_record(self) -> KEY:
        """The apex KEY record carrying the zone's public key."""
        return KEY.for_rsa(
            self.zone_public.modulus, self.zone_public.exponent
        )


def generate_deployment(
    config: ServiceConfig,
    zone_bits: int = 512,
    auth_bits: int = 512,
    use_demo_primes: bool = True,
    tsig_secret: bytes = b"repro-update-key-secret",
) -> Deployment:
    """Generate all key material for an ``(n, t)`` deployment.

    ``use_demo_primes`` selects the pre-generated safe primes (fast,
    demo-grade); pass ``False`` to generate fresh safe primes (slow in
    pure Python but fully independent).
    """
    n, t = config.n, config.t
    if use_demo_primes:
        zone_public, zone_shares = demo_threshold_key(n, t, zone_bits)
        coin_public, coin_shares = demo_threshold_key(n, t, zone_bits)
    else:
        zone_public, zone_shares = deal_threshold_key(n, t, bits=zone_bits)
        coin_public, coin_shares = deal_threshold_key(n, t, bits=zone_bits)
    auth_keys = [generate_rsa_keypair(auth_bits) for _ in range(n)]
    replicas = tuple(
        ReplicaKeys(
            index=i,
            zone_share=zone_shares[i],
            coin_share=coin_shares[i],
            auth_key=auth_keys[i],
        )
        for i in range(n)
    )
    tsig_key = TsigKey(
        name=Name.from_text("update-key.repro."), secret=tsig_secret
    )
    return Deployment(
        config=config,
        zone_public=zone_public,
        coin_public=coin_public,
        auth_public=tuple(k.public for k in auth_keys),
        replicas=replicas,
        tsig_key=tsig_key,
    )


# --------------------------------------------------------------------------
# File form (the "private key file transported over a secure channel")
# --------------------------------------------------------------------------


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode()


def _unb64(text: str) -> bytes:
    return base64.b64decode(text)


def save_replica_keys(keys: ReplicaKeys, path: str) -> None:
    """Write one replica's private key file (as the init utility would)."""
    payload = {
        "index": keys.index,
        "zone_share": _b64(keys.zone_share.to_bytes()),
        "coin_share": _b64(keys.coin_share.to_bytes()),
        "auth_modulus": str(keys.auth_key.private.modulus),
        "auth_exponent": str(keys.auth_key.private.exponent),
        "auth_private_exponent": str(keys.auth_key.private.private_exponent),
        "auth_prime_p": str(keys.auth_key.private.prime_p),
        "auth_prime_q": str(keys.auth_key.private.prime_q),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)


def load_replica_keys(path: str) -> ReplicaKeys:
    """Read a replica private key file written by :func:`save_replica_keys`."""
    from repro.crypto.rsa import RsaPrivateKey

    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    private = RsaPrivateKey(
        modulus=int(payload["auth_modulus"]),
        exponent=int(payload["auth_exponent"]),
        private_exponent=int(payload["auth_private_exponent"]),
        prime_p=int(payload["auth_prime_p"]),
        prime_q=int(payload["auth_prime_q"]),
    )
    return ReplicaKeys(
        index=payload["index"],
        zone_share=ThresholdKeyShare.from_bytes(_unb64(payload["zone_share"])),
        coin_share=ThresholdKeyShare.from_bytes(_unb64(payload["coin_share"])),
        auth_key=RsaKeyPair(private=private),
    )
