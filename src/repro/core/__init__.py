"""The paper's contribution: the secure replicated name service.

* :mod:`repro.core.keytool` — trusted key generation/distribution (§4.3)
* :mod:`repro.core.replica` — Wrapper + named as one replica (§4.1, §4.2)
* :mod:`repro.core.client` — dig/nsupdate equivalents, pragmatic (§3.4)
  and full (§3.3) client models
* :mod:`repro.core.faults` — corrupted-server behaviours (§4.4)
* :mod:`repro.core.service` — assembles a whole deployment on the
  simulator
* :mod:`repro.core.oracle` — trusted / weak-trusted server specifications
  used to check goals G1/G1' in tests
"""

from repro.core.keytool import Deployment, generate_deployment
from repro.core.replica import ReplicaServer
from repro.core.client import PragmaticClient, FullClient
from repro.core.service import ReplicatedNameService
from repro.core.faults import CorruptionMode

__all__ = [
    "Deployment",
    "generate_deployment",
    "ReplicaServer",
    "PragmaticClient",
    "FullClient",
    "ReplicatedNameService",
    "CorruptionMode",
]
