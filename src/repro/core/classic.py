"""Classic primary/secondary DNS replication — the design the paper replaces.

§1: "The authoritative servers of every zone ... are usually divided
into a primary and one or more secondary servers.  The original zone
data is kept at the primary server and the secondary servers
periodically obtain it from the primary ... This means that an attacker
may corrupt the data of all servers by compromising the primary alone."

This module implements exactly that architecture on the simulator —
dynamic updates go to the primary, secondaries poll the SOA serial and
pull the zone via AXFR — so the repository contains the baseline whose
single point of failure motivates the whole paper.  The contrast is
exercised by tests and the security-comparison example.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.dns import constants as c
from repro.dns.axfr import transfer_zone
from repro.dns.message import Message, make_response
from repro.dns.server import AuthoritativeServer
from repro.dns.update import UpdateProcessor
from repro.dns.zone import Zone
from repro.dns.zonefile import parse_zone_text
from repro.errors import WireFormatError
from repro.sim.machines import Topology, lan_setup
from repro.sim.network import SimNetwork
from repro.broadcast.messages import ClientRequest, ClientResponse


class ClassicServer:
    """One conventional name server (primary or secondary)."""

    def __init__(self, index: int, zone: Zone, node, is_primary: bool) -> None:
        self.index = index
        self.zone = zone
        self.node = node
        self.is_primary = is_primary
        self.server = AuthoritativeServer(zone, include_sigs=False)
        self.processor = UpdateProcessor(zone)
        self.compromised = False
        self._evil_zone: Optional[Zone] = None
        node.set_handler(self.on_message)

    def compromise(self, rewrite: Callable[[Zone], None]) -> None:
        """The attacker takes this server over and rewrites its zone data."""
        self.compromised = True
        rewrite(self.zone)
        self.zone.bump_serial()  # a higher serial makes secondaries pull it

    def on_message(self, sender: int, msg: object) -> None:
        if not isinstance(msg, ClientRequest):
            return
        try:
            request = Message.from_wire(msg.wire)
        except WireFormatError:
            return
        if request.opcode == c.OPCODE_UPDATE:
            if not self.is_primary:
                response = make_response(request, c.RCODE_NOTAUTH)
            else:
                response, result = self.processor.respond(request)
        else:
            response = self.server.handle_query(request)
        self.node.send(
            sender,
            ClientResponse(
                request_id=msg.request_id,
                wire=response.to_wire(),
                replica=self.index,
            ),
        )


class ClassicZoneService:
    """A primary + secondaries deployment with periodic AXFR refresh."""

    def __init__(
        self,
        zone_text: str,
        server_count: int = 4,
        topology: Optional[Topology] = None,
        refresh_interval: float = 5.0,
    ) -> None:
        if topology is None:
            topology = lan_setup(server_count)
        self.net = SimNetwork(topology, cpu_jitter=0.0)
        base = parse_zone_text(zone_text)
        self.zone_origin = base.origin
        self.servers: List[ClassicServer] = [
            ClassicServer(i, base.copy(), self.net.node(i), is_primary=(i == 0))
            for i in range(server_count)
        ]
        self.refresh_interval = refresh_interval
        self._schedule_refresh()

    @property
    def primary(self) -> ClassicServer:
        return self.servers[0]

    @property
    def secondaries(self) -> List[ClassicServer]:
        return self.servers[1:]

    # -- master/slave refresh --------------------------------------------------

    def _schedule_refresh(self) -> None:
        self.net.sim.schedule(self.refresh_interval, self._refresh)

    def _refresh(self) -> None:
        """Secondaries compare serials and AXFR from the primary."""
        for secondary in self.secondaries:
            if self.primary.zone.serial != secondary.zone.serial:
                fresh = transfer_zone(self.primary.zone)
                secondary.zone._nodes = fresh._nodes  # noqa: SLF001
        self._schedule_refresh()

    # -- experiment API -----------------------------------------------------------

    def query(self, name, rtype: int, server: int = 0) -> Message:
        """Ask one server directly (classic clients pick any NS)."""
        from repro.dns.message import make_query
        from repro.dns.name import Name

        qname = Name.from_text(name) if isinstance(name, str) else name
        responses: List[Message] = []
        client = getattr(self, "_client", None)
        if client is None:
            client = self.net.add_node(self.net.topology.machine(0), colocated_with=0)
            self._client = client
        client.set_handler(
            lambda s, m: responses.append(Message.from_wire(m.wire))
            if isinstance(m, ClientResponse)
            else None
        )
        query = make_query(qname, rtype)
        client.run_local(0.0, lambda: client.send(server, ClientRequest("q", query.to_wire())))
        self.net.sim.run(condition=lambda: bool(responses))
        return responses[0]

    def run_for(self, seconds: float) -> None:
        self.net.sim.run(until=self.net.sim.now + seconds)

    def serials(self) -> List[int]:
        return [server.zone.serial for server in self.servers]
