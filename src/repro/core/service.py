"""Assembling a whole replicated-name-service deployment on the simulator.

:class:`ReplicatedNameService` wires together the topology, key material,
replicas, and a client, then exposes a synchronous experiment API: each
``query`` / ``nsupdate_add`` / ``nsupdate_delete`` call drives the
simulator until the client accepts a response and returns the completed
operation with its simulated latency.  The benchmark harness, examples,
and integration tests all sit on top of this class.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import ServiceConfig
from repro.core.client import CompletedOp, FullClient, PragmaticClient
from repro.core.faults import CorruptionMode
from repro.core.keytool import Deployment, generate_deployment
from repro.core.replica import ReplicaServer
from repro.crypto.costmodel import CostModel
from repro.crypto.executor import (
    EXECUTOR_POOL,
    CryptoExecutor,
    CryptoWorkerPool,
    PoolExecutor,
)
from repro.crypto.shoup import ThresholdKeyShare, ThresholdPublicKey
from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.name import Name
from repro.dns.rdata import rdata_from_text
from repro.dns.zonefile import parse_zone_text
from repro.errors import ConfigError, TimeoutError_
from repro.sim.machines import (
    MachineSpec,
    Topology,
    lan_setup,
    paper_setup,
)
from repro.sim.network import SimNetwork

# The paper's client machine: a host on the Zurich LAN.
CLIENT_MACHINE = MachineSpec(
    "client", "Zurich", "Linux 2.2.x", "P II", 266, "IBM 1.4.1"
)

DEFAULT_ZONE = """
$ORIGIN example.com.
$TTL 3600
@   IN SOA ns1.example.com. admin.example.com. ( 100 7200 900 604800 300 )
    IN NS ns1
    IN NS ns2
ns1 IN A 192.0.2.1
ns2 IN A 192.0.2.2
www IN A 192.0.2.80
"""


def local_threshold_signer(
    public: ThresholdPublicKey, shares: Sequence[ThresholdKeyShare]
) -> Callable[[bytes], bytes]:
    """A signing callable combining ``t+1`` shares in one process.

    Used by the trusted setup step (§4.3's "special command ... to sign
    the zone data using the distributed key") and by tests as the oracle
    for what the distributed protocol must produce.
    """

    chosen = list(shares[: public.t + 1])
    if len(chosen) < public.t + 1:
        raise ConfigError("need t+1 shares to sign")

    def signer(data: bytes) -> bytes:
        sig_shares = [share.generate_share(data) for share in chosen]
        signature = public.assemble(data, sig_shares)
        public.verify_signature(data, signature)
        return signature

    return signer


def build_crypto_plane(
    config: ServiceConfig,
    deployment: Deployment,
    costs: Optional[CostModel] = None,
) -> Tuple[
    Optional[CryptoWorkerPool],
    List[Optional[CryptoExecutor]],
    Optional[CryptoExecutor],
]:
    """Construct the deployment's crypto execution plane, if pooled.

    Returns ``(pool, replica_executors, client_executor)``.  With the
    (default) serial plane everything is ``None`` and each component falls
    back to its own inline :class:`~repro.crypto.executor.SerialExecutor`.
    With the pool plane, one shared :class:`CryptoWorkerPool` serves a
    per-owner :class:`PoolExecutor` for every replica plus one for the
    client side; all key material registers here, *before* the first job,
    so pool workers deserialize it exactly once at warmup.
    """
    if config.crypto_executor != EXECUTOR_POOL:
        return None, [None] * config.n, None
    pool = CryptoWorkerPool(config.crypto_workers)
    executors: List[Optional[CryptoExecutor]] = []
    for i in range(config.n):
        keys = deployment.replicas[i]
        owner = f"replica{i}"
        pool.register(
            owner, key_share=keys.zone_share, auth_key=keys.auth_key.private
        )
        executors.append(
            PoolExecutor(
                pool,
                owner,
                key_share=keys.zone_share,
                auth_key=keys.auth_key.private,
                costs=costs,
            )
        )
    pool.register("client")
    client_executor = PoolExecutor(pool, "client", costs=costs)
    return pool, executors, client_executor


class ReplicatedNameService:
    """A complete simulated deployment of the secure replicated zone."""

    def __init__(
        self,
        config: ServiceConfig,
        topology: Optional[Topology] = None,
        zone_text: str = DEFAULT_ZONE,
        client_model: str = "pragmatic",
        costs: Optional[CostModel] = None,
        deployment: Optional[Deployment] = None,
        gateway: int = 0,
        verify_signatures: bool = True,
        seed: int = 0,
    ) -> None:
        self.config = config
        if topology is None:
            topology = lan_setup(config.n) if config.n <= 4 else paper_setup(config.n)
        if len(topology) != config.n:
            raise ConfigError(
                f"topology has {len(topology)} machines but config.n={config.n}"
            )
        self.topology = topology
        self.costs = costs if costs is not None else CostModel()
        self.net = SimNetwork(topology, costs=self.costs, seed=seed)
        self.deployment = (
            deployment if deployment is not None else generate_deployment(config)
        )

        # Build and (if configured) sign the initial zone — the trusted
        # setup step: all replicas start from the same signed zone file.
        base_zone = parse_zone_text(zone_text)
        self.zone_origin = base_zone.origin
        if config.signed_zone:
            key_record = self.deployment.zone_key_record
            base_zone.add_rdata(base_zone.origin, c.TYPE_KEY, 3600, key_record)
            signer = local_threshold_signer(
                self.deployment.zone_public,
                [r.zone_share for r in self.deployment.replicas],
            )
            dnssec.sign_zone_locally(base_zone, key_record, signer)
        self.initial_zone = base_zone

        self._pool, replica_executors, self._client_executor = build_crypto_plane(
            config, self.deployment, costs=self.costs
        )
        self.replicas: List[ReplicaServer] = []
        for i in range(config.n):
            replica = ReplicaServer(
                index=i,
                deployment=self.deployment,
                zone=base_zone.copy(),
                node=self.net.node(i),
                costs=self.costs,
                seed=seed,
                executor=replica_executors[i],
            )
            self.replicas.append(replica)

        # Shared by all clients of this service: deterministic DNS message
        # ids make every request wire — and everything derived from it —
        # a pure function of the seed, so chaos runs replay exactly.
        self._id_rng = random.Random((seed << 16) ^ 0x1D5)
        client_node = self.net.add_node(CLIENT_MACHINE, colocated_with=gateway)
        client_args = dict(
            node=client_node,
            config=config,
            replica_ids=list(range(config.n)),
            zone_origin=self.zone_origin,
            zone_key=self.deployment.zone_key_record if config.signed_zone else None,
            tsig_key=self.deployment.tsig_key if config.require_tsig else None,
            costs=self.costs,
            verify_signatures=verify_signatures,
            id_rng=self._id_rng,
            executor=self._client_executor,
        )
        if client_model == "pragmatic":
            self.client = PragmaticClient(gateway=gateway, **client_args)
        elif client_model == "full":
            self.client = FullClient(**client_args)
        else:
            raise ConfigError(f"unknown client model {client_model!r}")
        self._client_model = client_model
        self._verify_signatures = verify_signatures
        self.extra_clients: List[PragmaticClient] = []

    def add_client(self, gateway: int = 0) -> PragmaticClient:
        """Add another pragmatic client on its own machine.

        Throughput experiments need several concurrent request sources so
        a single client's per-request overhead does not serialize the
        whole workload (each client node charges its own CPU time).
        """
        node = self.net.add_node(CLIENT_MACHINE, colocated_with=gateway)
        client = PragmaticClient(
            gateway=gateway,
            node=node,
            config=self.config,
            replica_ids=list(range(self.config.n)),
            zone_origin=self.zone_origin,
            zone_key=(
                self.deployment.zone_key_record if self.config.signed_zone else None
            ),
            tsig_key=(
                self.deployment.tsig_key if self.config.require_tsig else None
            ),
            costs=self.costs,
            verify_signatures=self._verify_signatures,
            id_rng=self._id_rng,
            executor=self._client_executor,
        )
        self.extra_clients.append(client)
        return client

    def close(self) -> None:
        """Shut down the shared crypto worker pool, if one was started."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ReplicatedNameService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def corrupt(self, replica: int, mode: CorruptionMode) -> None:
        self.replicas[replica].corrupt(mode)

    def corrupt_paper_style(self, k: int) -> None:
        """The paper's corruption placement (§5.1): with one corruption, a
        Zurich server; with two, the Zurich server and the Austin one."""
        if k >= 1:
            zurich = self._first_at("Zurich", exclude=(0,))
            self.replicas[zurich].corrupt(CorruptionMode.BAD_SHARES)
        if k >= 2:
            austin = self._first_at("Austin")
            self.replicas[austin].corrupt(CorruptionMode.BAD_SHARES)
        if k >= 3:
            raise ConfigError("the paper corrupts at most two servers")

    def _first_at(self, location: str, exclude: Tuple[int, ...] = ()) -> int:
        for i in range(self.config.n):
            if i in exclude:
                continue
            if self.topology.machine(i).location == location:
                return i
        raise ConfigError(f"no replica at {location}")

    # ------------------------------------------------------------------
    # synchronous experiment API
    # ------------------------------------------------------------------

    def _await_op(self, issue: Callable[[Callable], int], limit: float = 600.0) -> CompletedOp:
        box: List[CompletedOp] = []
        issue(box.append)
        deadline = self.net.sim.now + limit
        self.net.sim.run(until=deadline, condition=lambda: bool(box))
        # Let any same-time events settle.
        if not box:
            raise TimeoutError_(
                f"operation did not complete within {limit} simulated seconds"
            )
        return box[0]

    def query(self, name: str | Name, rtype: int = c.TYPE_A) -> CompletedOp:
        """dig-style read; drives the simulation until the client accepts."""
        qname = Name.from_text(name) if isinstance(name, str) else name
        return self._await_op(
            lambda cb: self.client.query(qname, rtype, cb)
        )

    def add_record(
        self, name: str | Name, rtype: int, ttl: int, rdata_text: str
    ) -> CompletedOp:
        """Raw update: add one record (no preceding read)."""
        owner = Name.from_text(name) if isinstance(name, str) else name
        rdata = rdata_from_text(rtype, rdata_text.split(), self.zone_origin)
        return self._await_op(
            lambda cb: self.client.add_record(owner, rtype, ttl, rdata, cb)
        )

    def delete_name(self, name: str | Name) -> CompletedOp:
        owner = Name.from_text(name) if isinstance(name, str) else name
        return self._await_op(lambda cb: self.client.delete_name(owner, cb))

    def nsupdate_add(
        self, name: str | Name, rtype: int, ttl: int, rdata_text: str
    ) -> Tuple[CompletedOp, CompletedOp, float]:
        """nsupdate semantics: a read precedes the add (§5.2).

        Returns ``(read_op, add_op, total_latency)`` — Table 2's "Add"
        numbers correspond to ``total_latency``.
        """
        read_op = self.query(self.zone_origin, c.TYPE_SOA)
        add_op = self.add_record(name, rtype, ttl, rdata_text)
        return read_op, add_op, read_op.latency + add_op.latency

    def nsupdate_delete(self, name: str | Name) -> Tuple[CompletedOp, CompletedOp, float]:
        """nsupdate semantics: a read precedes the delete."""
        read_op = self.query(self.zone_origin, c.TYPE_SOA)
        delete_op = self.delete_name(name)
        return read_op, delete_op, read_op.latency + delete_op.latency

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def settle(self, limit: float = 600.0) -> None:
        """Drain in-flight work: run the simulation until quiescent.

        The experiment API returns as soon as the *client* accepts a
        response; replicas that lag (slower machines finishing their last
        signature) settle here before state comparisons.
        """
        self.net.sim.run(until=self.net.sim.now + limit)

    def honest_replicas(self) -> List[ReplicaServer]:
        return [r for r in self.replicas if not r.fault.is_corrupted]

    def zone_digests(self) -> List[bytes]:
        """State fingerprints of all honest replicas (must agree)."""
        self.settle()
        return [r.zone.digest() for r in self.honest_replicas()]

    def states_consistent(self) -> bool:
        digests = self.zone_digests()
        return len(set(digests)) == 1

    def verify_all_zones(self) -> int:
        """DNSSEC-verify every honest replica's zone; returns #signatures."""
        self.settle()
        total = 0
        for replica in self.honest_replicas():
            total += dnssec.verify_zone(
                replica.zone, self.deployment.zone_key_record
            )
        return total

    def total_signing_rounds(self) -> int:
        """Distributed signing rounds started across honest replicas.

        With the signed-answer cache, repeated identical queries must not
        start new rounds — benchmarks and tests assert on this counter.
        """
        return sum(r.signing_rounds for r in self.honest_replicas())

    def render_cache_stats(self) -> Dict[str, int]:
        """Summed canonical-render-cache stats across honest replicas."""
        totals: Dict[str, int] = {}
        for replica in self.honest_replicas():
            for key, value in replica.zone.render.stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def cancelled_trials(self) -> int:
        """OptTE subset trials cancelled by the lane-cancel protocol."""
        total = 0
        for replica in self.honest_replicas():
            if replica.coordinator.executor is not None:
                total += replica.coordinator.executor.stats["cancelled_trials"]
        return total
