"""Specification oracles: the trusted server and the weak trusted server.

§3.1 defines correctness against an abstract *trusted server* that always
follows the specification; §3.4 weakens it to the *weak trusted server*
that may answer reads from any previous state and may ignore requests.
The test suite replays a client workload against both the replicated
service and these oracles to check goals G1 (correctness) and G1' (weak
correctness) mechanically.
"""

from __future__ import annotations

from typing import List

from repro.dns import constants as c
from repro.dns.message import Message
from repro.dns.server import AuthoritativeServer
from repro.dns.update import UpdateProcessor
from repro.dns.zone import Zone


class TrustedServer:
    """The §3.1 ideal: processes every request, in order, per the spec."""

    def __init__(self, zone: Zone) -> None:
        self.zone = zone.copy()
        self.server = AuthoritativeServer(self.zone, include_sigs=False)
        self.processor = UpdateProcessor(self.zone)
        self.history: List[Zone] = [self.zone.copy()]

    def process(self, request: Message) -> Message:
        """Execute one request and return the specified response."""
        if request.opcode == c.OPCODE_UPDATE:
            response, result = self.processor.respond(request)
            if result.data_changed:
                self.history.append(self.zone.copy())
            return response
        return self.server.handle_query(request)

    def state_digest(self) -> bytes:
        return self.zone.digest()


class WeakTrustedServer(TrustedServer):
    """The §3.4 relaxation: reads may reflect *any* earlier state.

    :meth:`acceptable_read_answers` enumerates the answers the weak
    trusted server could legitimately return for a read — the response of
    the query evaluated against every historical state.  A response is
    *approximate* (G1') iff it appears in this set.
    """

    def acceptable_read_answers(self, request: Message) -> List[bytes]:
        answers = []
        for snapshot in self.history:
            server = AuthoritativeServer(snapshot, include_sigs=False)
            answers.append(self._answer_key(server.handle_query(request)))
        return answers

    def is_approximate(self, request: Message, response: Message) -> bool:
        """Check G1': does ``response`` match some historical state?"""
        key = self._answer_key(response)
        return key in self.acceptable_read_answers(request)

    @staticmethod
    def _answer_key(response: Message) -> bytes:
        """Compare responses by rcode + answer content, ignoring SIGs."""
        parts = [bytes([response.rcode])]
        for rr in response.answers:
            if rr.rtype == c.TYPE_SIG:
                continue
            rdata_wire = rr.rdata.to_wire() if rr.rdata is not None else b""
            parts.append(
                rr.name.canonical_wire()
                + rr.rtype.to_bytes(2, "big")
                + rdata_wire
            )
        return b"|".join(sorted(parts))


def responses_match(spec: Message, actual: Message) -> bool:
    """G1 comparison: same rcode and same non-SIG answer content."""
    return WeakTrustedServer._answer_key(spec) == WeakTrustedServer._answer_key(
        actual
    )
