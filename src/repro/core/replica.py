"""One replica of the replicated name service: Wrapper + named (§4).

The replica glues together everything below it:

* the **atomic broadcast** endpoint that totally orders client requests
  (reads *and* writes, §3.3),
* the **DNS engine** (query processing and RFC 2136 updates) executing
  delivered requests deterministically,
* the **threshold signing coordinator** that computes SIG records for
  dynamic updates in the signed zone — sequentially, one record at a
  time, exactly as the modified named did (§4.2, §5.2),
* the **fault injector** that can make this replica behave as a
  corrupted server (§4.4).

Like named, request execution is serialized: while an update's signature
tasks are in flight, subsequently delivered requests wait in the
execution queue — this preserves the deterministic order across replicas.
"""

from __future__ import annotations

import hashlib
import struct
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.broadcast.abc import (
    AtomicBroadcast,
    AuthPlane,
    BatchQueue,
    derive_request_id,
)
from repro.broadcast.messages import (
    MAX_BATCH_NESTING,
    AbcOrder,
    AbcPrepare,
    ClientRequest,
    ClientResponse,
    WrapperSigning,
    decode_batch,
    encode_batch,
    is_batch_payload,
)
from repro.config import ServiceConfig
from repro.core.faults import CorruptionMode, FaultInjector
from repro.core.keytool import Deployment
from repro.crypto.costmodel import CostModel
from repro.crypto.executor import CryptoExecutor
from repro.crypto.protocols import SigningCoordinator, SigningMessage
from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.dnssec import SigningPolicy, SigningTask
from repro.dns.message import Message, make_response
from repro.dns.server import AuthoritativeServer
from repro.dns.name import Name
from repro.dns.tsig import TsigKeyring, verify_message
from repro.dns.update import UpdateProcessor, UpdateResult
from repro.dns.zone import Zone
from repro.errors import TsigError, WireFormatError, ZoneError
from repro.sim.network import SimNode


#: Caps on the retry/answer caches.  Both are keyed by client-chosen input
#: (request-wire hash, question name/type), so without a bound a client
#: flooding distinct queries grows replica memory without limit; at the
#: cap the oldest entry is evicted (insertion order ~= arrival order).
MAX_RESPONSE_CACHE_ENTRIES = 4096
MAX_ANSWER_CACHE_ENTRIES = 4096


def encode_request(client: int, wire: bytes) -> bytes:
    """ABC payload: the requesting client's node id plus the DNS wire."""
    return struct.pack(">I", client) + wire


def decode_request(payload: bytes) -> Tuple[int, bytes]:
    (client,) = struct.unpack_from(">I", payload, 0)
    return client, payload[4:]


def canonical_response_wire(wire: bytes) -> bytes:
    """The response wire with its message id zeroed.

    Identical queries differ only in their random DNS message id, and the
    id is echoed in the response header.  Threshold signatures over signed
    answers cover this id-less form so one distributed signing round can
    vouch for every future repetition of the same question.
    """
    return b"\x00\x00" + wire[2:]


@dataclass
class _PendingUpdate:
    """An update waiting for its threshold signatures.

    Sequential mode walks ``tasks`` one session at a time through
    ``index``; parallel mode (``parallel_update_signing``) opens every
    session up front and tracks per-task completion in ``attached``.
    """

    request_id: str
    client: int
    response_wire: bytes
    tasks: List[SigningTask]
    index: int = 0
    wire_hash: bytes = b""
    parallel: bool = False
    attached: Set[int] = field(default_factory=set)

    @property
    def current(self) -> SigningTask:
        return self.tasks[self.index]

    @property
    def finished(self) -> bool:
        if self.parallel:
            return len(self.attached) >= len(self.tasks)
        return self.index >= len(self.tasks)


@dataclass
class _CachedAnswer:
    """One signed-answer cache entry plus its invalidation metadata.

    ``owner_names`` holds every owner name appearing in the cached
    response (question, answers, authority, additionals — CNAME chains and
    referrals drag other names into a response); an update touching a
    related name invalidates the entry.  ``volatile`` marks entries whose
    correctness depends on the zone as a whole (negative answers, and
    responses carrying SOA or NXT records, both of which change on *any*
    data-changing update); those drop on every update.
    """

    query_tail: bytes
    wire: bytes           # canonical (id-zeroed) response wire
    signature: bytes      # threshold signature over ``wire`` (A3) or b""
    owner_names: frozenset
    volatile: bool


@dataclass
class _PendingSignedRead:
    """A read whose *response* is being threshold-signed (ablation A3).

    The signature covers :func:`canonical_response_wire`, so the completed
    (wire, signature) pair is cacheable under ``cache_key`` for every later
    repetition of the same question at the same zone serial.
    """

    request_id: str
    client: int
    response_wire: bytes
    task: SigningTask
    cache_key: Optional[Tuple[object, int, int]] = None
    query_tail: bytes = b""
    owner_names: frozenset = frozenset()
    volatile: bool = True


class ReplicaServer:
    """One authoritative server of the replicated zone."""

    def __init__(
        self,
        index: int,
        deployment: Deployment,
        zone: Zone,
        node: SimNode,
        costs: Optional[CostModel] = None,
        signing_policy: Optional[SigningPolicy] = None,
        seed: int = 0,
        executor: Optional[CryptoExecutor] = None,
    ) -> None:
        self.index = index
        self.deployment = deployment
        self.config: ServiceConfig = deployment.config
        self.zone = zone
        self.node = node
        self.costs = costs if costs is not None else CostModel()
        self.policy = signing_policy if signing_policy is not None else SigningPolicy()
        self._seed = seed

        self.server = AuthoritativeServer(zone)
        self.processor = UpdateProcessor(zone)
        self.keyring = TsigKeyring()
        self.keyring.add(deployment.tsig_key)
        self.fault = FaultInjector(
            modulus=deployment.zone_public.modulus,
            seed=FaultInjector.derive_seed(seed, index),
        )
        self._stale_zone = zone.copy()
        self._stale_server = AuthoritativeServer(self._stale_zone)

        keys = deployment.replicas[index]
        self.executor = executor
        self.coordinator = SigningCoordinator(
            self.config.signing_protocol,
            keys.zone_share,
            executor=executor,
            lookahead=self.config.signing_lookahead,
        )
        if self.config.replicated:
            self.abc: Optional[AtomicBroadcast] = AtomicBroadcast(
                n=self.config.n,
                t=self.config.t,
                me=index,
                auth_key=keys.auth_key.private,
                auth_public=list(deployment.auth_public),
                coin_key=keys.coin_share,
                deliver=self._on_deliver,
                send=self._send,
                schedule=node.schedule_timer,
                timeout=self.config.abc_timeout,
                crypto=AuthPlane(
                    keys.auth_key.private,
                    list(deployment.auth_public),
                    executor=executor,
                ),
                rebatch_max=self.config.recovery_batch_size,
                dissemination=self.config.broadcast_mode,
                erasure_min_bytes=self.config.erasure_min_bytes,
            )
        else:
            self.abc = None

        if self.abc is not None and self.config.batch_size > 1:
            self.batch_queue: Optional[BatchQueue] = BatchQueue(
                max_batch=self.config.batch_size,
                max_delay=self.config.batch_delay,
                flush=self._flush_batch,
                schedule=node.schedule_timer,
            )
        else:
            self.batch_queue = None

        self._exec_queue: Deque[Tuple[str, int, bytes]] = deque()
        self._busy = False
        self._pending_update: Optional[_PendingUpdate] = None
        self._pending_read: Optional[_PendingSignedRead] = None
        # Responses already produced, keyed by request-wire hash.  Clients
        # retry by resending the same message (§3.4); the atomic broadcast
        # deduplicates it, so replicas must replay the cached response.
        self._response_cache: Dict[bytes, bytes] = {}
        # Requests already executed, by payload-derived id.  Atomic
        # broadcast deduplicates identical *payloads*, but with batching
        # the same request can ride in two differently-framed batches
        # (e.g. via two gateways), so execution dedupes again here —
        # deterministically, since all honest replicas see the same
        # delivery order.
        self._executed_rids: Set[str] = set()
        # The executed request sequence (for determinism checks): every
        # honest replica must log the identical list.
        self.delivered_requests: List[str] = []
        # Signed-answer cache: (qname, qtype, zone serial) -> entry.  The
        # serial is part of the key, so a data-changing update makes every
        # old entry unreachable; per-name invalidation then *re-keys*
        # entries unrelated to the update to the new serial (keeping hot
        # answers alive) and drops the affected and volatile ones.
        self._answer_cache: Dict[Tuple[object, int, int], _CachedAnswer] = {}

        # Statistics for benchmarks.
        self.stats: Dict[str, int] = {
            "queries": 0,
            "updates": 0,
            "signatures_completed": 0,
            "tsig_failures": 0,
            "batches_delivered": 0,
            "batched_requests": 0,
            "answer_cache_hits": 0,
            "answer_cache_misses": 0,
            "answer_cache_invalidated": 0,
            "answer_cache_retained": 0,
        }

        node.set_handler(self.on_message)

    @property
    def signing_rounds(self) -> int:
        """Distributed signing rounds this replica has started (for benches)."""
        return self.coordinator.rounds_started

    # ------------------------------------------------------------------
    # corruption control
    # ------------------------------------------------------------------

    def corrupt(self, mode: CorruptionMode) -> None:
        """Turn this replica into a corrupted server (§4.4)."""
        from repro.core.faults import tampered_zone_share

        self.fault.mode = mode
        # Restart the misbehaviour stream from the scenario-derived seed so
        # corruption at any point in a run replays identically.
        self.fault.reseed(self._seed, self.index)
        if mode is CorruptionMode.CRASH:
            self.node.dropped = True
        if mode is CorruptionMode.BAD_SHARES:
            bad = tampered_zone_share(
                self.deployment.replicas[self.index].zone_share
            )
            self.coordinator = SigningCoordinator(
                self.config.signing_protocol, bad
            )

    # ------------------------------------------------------------------
    # message dispatch
    # ------------------------------------------------------------------

    def on_message(self, sender: int, msg: object) -> None:
        self.node.charge(self.costs.message_handling)
        if isinstance(msg, ClientRequest):
            self._on_client_request(sender, msg)
        elif isinstance(msg, WrapperSigning):
            self._on_signing_message(sender, msg)
        else:
            self._on_abc_message(sender, msg)

    def _on_client_request(self, client: int, msg: ClientRequest) -> None:
        """Gateway role: accept a client request and disseminate it (§3.4)."""
        wire_hash = hashlib.sha256(msg.wire).digest()
        cached = self._response_cache.get(wire_hash)
        if cached is not None:
            # Refresh the entry's LRU position: active retries must not be
            # evictable by a flood of one-shot queries (§3.4 retry replay).
            self._cache_response(wire_hash, cached)
            self._send(
                client,
                ClientResponse(
                    request_id=msg.request_id, wire=cached, replica=self.index
                ),
            )
            return
        opcode = self._peek_opcode(msg.wire)
        if opcode is None:
            self._respond_error(client, msg.wire, c.RCODE_FORMERR)
            return
        if self.abc is None:
            # Unreplicated base case: execute directly (the (1,0) row).
            self._execute(msg.request_id, client, msg.wire)
            return
        if opcode == c.OPCODE_QUERY and not self.config.reads_via_abc:
            # Rarely-updated-zone mode (§3.4 last ¶): serve reads locally.
            self._execute(msg.request_id, client, msg.wire)
            return
        payload = encode_request(client, msg.wire)
        if (
            opcode == c.OPCODE_QUERY
            and derive_request_id(payload) in self._executed_rids
        ):
            # Retry of an already-delivered query whose cached response was
            # evicted.  Re-broadcasting cannot answer it — the broadcast
            # layer deduplicates the request id — so the retry would go
            # silent forever.  Queries are idempotent reads: re-execute
            # against the current zone instead.  Never while _busy: a
            # delivered rid may still be queued behind an in-flight
            # signing round, during which the zone's SIGs are incomplete
            # and serving them would violate G3 — staying silent lets the
            # client's next retry land after the queue drains.
            if not self._busy:
                self._execute(msg.request_id, client, msg.wire)
            return
        if self.batch_queue is not None:
            # Bounded: BatchQueue flushes itself at max_batch entries.
            # repro-lint: disable=C304
            self.batch_queue.append(payload)
        else:
            self.abc.a_broadcast(payload)

    def _flush_batch(self, payloads: List[bytes]) -> None:
        """Order a flushed batch in one atomic-broadcast sequence slot."""
        assert self.abc is not None
        if len(payloads) == 1:
            # A lone request needs no batch frame; its payload-derived id
            # matches what an unbatched gateway would have broadcast.
            self.abc.a_broadcast(payloads[0])
        else:
            self.abc.a_broadcast(encode_batch(payloads))

    def _on_signing_message(self, sender: int, msg: WrapperSigning) -> None:
        outs = self.coordinator.on_message(sender, msg.inner)
        self.node.charge_ops(self.coordinator.drain_ops(), self.costs)
        self._send_signing(outs)
        self._check_signing_progress()

    def _on_abc_message(self, sender: int, msg: object) -> None:
        if self.abc is None:
            return
        # Charge the broadcast layer's authentication work.
        if isinstance(msg, AbcOrder):
            self.node.charge(self.costs.auth_sign)  # we sign our prepare
        elif isinstance(msg, AbcPrepare):
            self.node.charge(self.costs.auth_verify)
        self.abc.on_message(sender, msg)

    # ------------------------------------------------------------------
    # execution (the deterministic state machine)
    # ------------------------------------------------------------------

    def _flatten_batches(self, payload: bytes, depth: int = 0) -> List[bytes]:
        """Unwrap (possibly nested) batch frames into request payloads.

        A new leader re-batches whole pending payloads on epoch change —
        including gateway batch frames — so delivered batches may nest.
        Nesting is capped at MAX_BATCH_NESTING; a deeper (necessarily
        Byzantine) frame is dropped whole, identically on every replica.
        """
        if not is_batch_payload(payload):
            return [payload]
        if depth >= MAX_BATCH_NESTING:
            return []
        entries = decode_batch(payload)
        self.stats["batches_delivered"] += 1
        self.stats["batched_requests"] += len(entries)
        flat: List[bytes] = []
        for entry in entries:
            flat.extend(self._flatten_batches(entry, depth + 1))
        return flat

    def _on_deliver(self, rid: str, payload: bytes) -> None:
        entries = self._flatten_batches(payload)
        for entry in entries:
            # Batch entries execute in frame order, and every request
            # executes at most once system-wide: sub-request ids are
            # payload-derived, so all honest replicas skip the same
            # duplicates and the state machine stays deterministic.
            sub_rid = derive_request_id(entry)
            if sub_rid in self._executed_rids:
                continue
            if len(entry) < 4:
                continue  # malformed entry from a Byzantine gateway
            self._executed_rids.add(sub_rid)
            self.delivered_requests.append(sub_rid)
            client, wire = decode_request(entry)
            self._exec_queue.append((sub_rid, client, wire))
        self._drain_exec_queue()

    def _drain_exec_queue(self) -> None:
        while not self._busy and self._exec_queue:
            rid, client, wire = self._exec_queue.popleft()
            self._execute(rid, client, wire)

    def _execute(self, rid: str, client: int, wire: bytes) -> None:
        opcode = self._peek_opcode(wire)
        if opcode == c.OPCODE_UPDATE:
            self.node.charge(self.costs.dns_processing)
            self._execute_update(rid, client, wire)
        else:
            # Queries charge inside _execute_query: an answer-cache hit
            # skips full request processing and pays the cheap lookup cost.
            self._execute_query(rid, client, wire)

    def _answer_cache_key(
        self, query: Message, wire: bytes
    ) -> Tuple[Optional[Tuple[object, int, int]], bytes]:
        """Cache key ``(qname, qtype, zone serial)`` plus the query-tail hash.

        The tail hash (everything after the random message id) guards the
        rare case of two queries agreeing on the question but differing in
        header flags or class — those must not share a cached answer.
        """
        if not self.config.answer_cache:
            return None, b""
        if self.fault.mode is CorruptionMode.STALE_READS:
            return None, b""  # the stale server must not touch the cache
        if len(query.questions) != 1:
            return None, b""
        question = query.questions[0]
        try:
            serial = self.zone.serial
        except ZoneError:
            return None, b""
        key = (question.name, question.rtype, serial)
        return key, hashlib.sha256(wire[2:]).digest()

    def _execute_query(self, rid: str, client: int, wire: bytes) -> None:
        self.stats["queries"] += 1
        try:
            query = Message.from_wire(wire)
        except WireFormatError:
            self.node.charge(self.costs.dns_processing)
            self._respond_error(client, wire, c.RCODE_FORMERR)
            return
        cache_key, query_tail = self._answer_cache_key(query, wire)
        if cache_key is not None:
            hit = self._answer_cache.get(cache_key)
            if hit is not None and hit.query_tail == query_tail:
                # Fast path: splice the query's message id into the cached
                # wire; with sign_every_response the cached threshold
                # signature (over the id-less canonical wire) rides along,
                # so no distributed signing round runs at all.
                self.stats["answer_cache_hits"] += 1
                self.node.charge(self.costs.answer_cache_hit)
                response_wire = wire[:2] + hit.wire[2:]
                self._cache_response(hashlib.sha256(wire).digest(), response_wire)
                self._respond(rid, client, response_wire, threshold_sig=hit.signature)
                return
            self.stats["answer_cache_misses"] += 1
        self.node.charge(self.costs.dns_processing)
        if self.fault.mode is CorruptionMode.STALE_READS:
            response = self._stale_server.handle_query(query)
        else:
            response = self.server.handle_query(query)
        owner_names, volatile = self._answer_meta(response)
        response_wire = response.to_wire()
        self._cache_response(hashlib.sha256(wire).digest(), response_wire)
        if self.config.sign_every_response:
            self._start_response_signing(
                rid, client, response_wire, cache_key, query_tail,
                owner_names, volatile,
            )
            return
        if cache_key is not None:
            self._cache_answer(cache_key, _CachedAnswer(
                query_tail=query_tail,
                wire=canonical_response_wire(response_wire),
                signature=b"",
                owner_names=owner_names,
                volatile=volatile,
            ))
        self._respond(rid, client, response_wire)

    @staticmethod
    def _answer_meta(response: Message) -> Tuple[frozenset, bool]:
        """Invalidation metadata for a response about to be cached."""
        rrs = (*response.answers, *response.authority, *response.additional)
        names = {rr.name for rr in rrs}
        names.update(q.name for q in response.questions)
        volatile = response.rcode != c.RCODE_NOERROR or any(
            rr.rtype in (c.TYPE_SOA, c.TYPE_NXT) for rr in rrs
        )
        return frozenset(names), volatile

    def _cache_response(self, wire_hash: bytes, response_wire: bytes) -> None:
        """Bounded LRU insert into the retry cache.

        Re-inserting an existing key moves it to the back of the eviction
        order, so entries that clients are actively retrying survive a
        flood of one-shot queries; the least-recently-used entry is
        evicted at capacity.
        """
        self._response_cache.pop(wire_hash, None)
        if len(self._response_cache) >= MAX_RESPONSE_CACHE_ENTRIES:
            self._response_cache.pop(next(iter(self._response_cache)))
        self._response_cache[wire_hash] = response_wire

    def _cache_answer(
        self, cache_key: Tuple[object, int, int], entry: "_CachedAnswer"
    ) -> None:
        """Bounded insert into the signed-answer cache (oldest evicted)."""
        if cache_key not in self._answer_cache:
            if len(self._answer_cache) >= MAX_ANSWER_CACHE_ENTRIES:
                self._answer_cache.pop(next(iter(self._answer_cache)))
        self._answer_cache[cache_key] = entry

    def _invalidate_answer_cache(self, result: UpdateResult) -> None:
        """Per-name invalidation after a data-changing update.

        Drops entries whose owner names are related (equal, ancestor, or
        descendant — delegation and subtree deletes change answers above
        and below the touched name) to any name the update affected, plus
        all volatile entries; every surviving entry is re-keyed to the new
        zone serial so it keeps hitting.
        """
        if not self._answer_cache:
            return
        affected = (
            result.changed_names | result.added_names | result.deleted_names
        )
        try:
            new_serial = self.zone.serial
        except ZoneError:
            self._answer_cache.clear()
            return
        survivors: Dict[Tuple[object, int, int], _CachedAnswer] = {}
        for (qname, qtype, _serial), entry in self._answer_cache.items():
            if entry.volatile or self._names_related(entry.owner_names, affected):
                self.stats["answer_cache_invalidated"] += 1
                continue
            survivors[(qname, qtype, new_serial)] = entry
            self.stats["answer_cache_retained"] += 1
        self._answer_cache = survivors

    @staticmethod
    def _names_related(owner_names: frozenset, affected: Set[Name]) -> bool:
        for name in owner_names:
            for changed in affected:
                if not isinstance(name, Name) or not isinstance(changed, Name):
                    return True  # unknown name kinds: be conservative
                if name.is_subdomain_of(changed) or changed.is_subdomain_of(name):
                    return True
        return False

    def _execute_update(self, rid: str, client: int, wire: bytes) -> None:
        self.stats["updates"] += 1
        update: Optional[Message] = None
        if self.config.require_tsig:
            try:
                update, _ = verify_message(wire, self.keyring, now=None)
            except TsigError:
                self.stats["tsig_failures"] += 1
                self._respond_error(client, wire, c.RCODE_REFUSED)
                return
        if update is None:
            try:
                update = Message.from_wire(wire)
            except WireFormatError:
                self._respond_error(client, wire, c.RCODE_FORMERR)
                return
        response, result = self.processor.respond(update)
        if result.ok and result.data_changed:
            # The update bumped the zone serial: old-serial keys are
            # unreachable, so invalidate affected entries and re-key the
            # unrelated survivors to keep hot answers alive.
            self._invalidate_answer_cache(result)
        response_wire = response.to_wire()
        wire_hash = hashlib.sha256(wire).digest()
        if not (self.config.signed_zone and result.ok and result.data_changed):
            self._cache_response(wire_hash, response_wire)
            self._respond(rid, client, response_wire)
            return
        if self.config.resign_whole_zone:
            # Baseline ablation for the write benchmarks: re-derive and
            # re-sign every RRset of the zone after each update (the
            # pre-incremental write path).
            tasks = dnssec.signing_tasks_for_zone(
                self.zone, self.deployment.zone_key_record, self.policy
            )
        else:
            tasks = dnssec.signing_tasks_for_update(
                self.zone, result, self.deployment.zone_key_record, self.policy
            )
        if not tasks:
            self._cache_response(wire_hash, response_wire)
            self._respond(rid, client, response_wire)
            return
        self._busy = True
        parallel = self.config.parallel_update_signing and self.abc is not None
        self._pending_update = _PendingUpdate(
            request_id=rid,
            client=client,
            response_wire=response_wire,
            tasks=tasks,
            wire_hash=wire_hash,
            parallel=parallel,
        )
        if parallel:
            self._start_all_tasks()
        else:
            self._start_current_task()

    # ------------------------------------------------------------------
    # threshold signing orchestration
    # ------------------------------------------------------------------

    def _start_current_task(self) -> None:
        assert self._pending_update is not None
        if self.abc is None:
            # Unreplicated base case: named signs locally with its own
            # key, like unmodified BIND (4 SIGs per add, 2 per delete —
            # the (1,0) row of Table 2).
            pending = self._pending_update
            self._pending_update = None
            self._busy = False
            keys = self.deployment.replicas[self.index].zone_share
            for task in pending.tasks:
                share = keys.generate_share(task.data)
                signature = keys.public.assemble(task.data, [share])
                self.node.charge(self.costs.local_sign)
                # The signature was produced just above from our own key
                # share over update data that already passed TSIG + policy
                # checks; there is nothing remote left to verify.
                # repro-lint: disable=T405
                dnssec.attach_signature(self.zone, task, signature)
                self.stats["signatures_completed"] += 1
            self._respond(pending.request_id, pending.client, pending.response_wire)
            self._drain_exec_queue()
            return
        pending = self._pending_update
        task = pending.current
        outs = self.coordinator.sign(task.sign_id, task.data)
        # Session pipelining: while this session verifies and assembles,
        # speculatively generate our shares for the next few SIG tasks of
        # the same update (bounded in-flight; refusals just fall back to
        # on-demand generation when the session starts).
        if self.coordinator.lookahead > 0:
            upcoming = pending.tasks[
                pending.index + 1 : pending.index + 1 + self.coordinator.lookahead
            ]
            for nxt in upcoming:
                self.coordinator.prefetch(nxt.sign_id, nxt.data)
        self.node.charge_ops(self.coordinator.drain_ops(), self.costs)
        self._send_signing(outs)
        self._check_signing_progress()

    def _start_all_tasks(self) -> None:
        """Write-path fan-out: open every signing session of the update.

        The coordinator multiplexes concurrent sessions (peers buffer
        shares for sessions they have not reached yet), and on the pool
        plane the share generation of all sessions overlaps.  Session
        order is the deterministic task order, so transcripts still match
        across replicas and executor planes.
        """
        pending = self._pending_update
        assert pending is not None
        for task in pending.tasks:
            outs = self.coordinator.sign(task.sign_id, task.data)
            self.node.charge_ops(self.coordinator.drain_ops(), self.costs)
            self._send_signing(outs)
        self._check_signing_progress()

    def _start_response_signing(
        self,
        rid: str,
        client: int,
        response_wire: bytes,
        cache_key: Optional[Tuple[object, int, int]] = None,
        query_tail: bytes = b"",
        owner_names: frozenset = frozenset(),
        volatile: bool = True,
    ) -> None:
        """Ablation A3: threshold-sign the response itself.

        The signature covers the canonical (id-zeroed) wire, so the session
        id — and therefore the whole distributed signing round — is shared
        by every repetition of the same question at this zone serial.
        """
        canonical = canonical_response_wire(response_wire)
        sign_id = "resp-" + hashlib.sha256(canonical).hexdigest()[:24]
        task = SigningTask(
            sign_id=sign_id,
            name=self.zone.origin,
            rtype=0,
            data=canonical,
            template=None,  # type: ignore[arg-type]
            ttl=0,
        )
        self._busy = True
        self._pending_read = _PendingSignedRead(
            request_id=rid,
            client=client,
            response_wire=response_wire,
            task=task,
            cache_key=cache_key,
            query_tail=query_tail,
            owner_names=owner_names,
            volatile=volatile,
        )
        outs = self.coordinator.sign(sign_id, canonical)
        self.node.charge_ops(self.coordinator.drain_ops(), self.costs)
        self._send_signing(outs)
        self._check_signing_progress()

    def _finish_pending_update(self) -> None:
        done = self._pending_update
        assert done is not None
        self._pending_update = None
        self._busy = False
        if done.wire_hash:
            self._cache_response(done.wire_hash, done.response_wire)
        self._respond(done.request_id, done.client, done.response_wire)
        self._drain_exec_queue()

    def _check_signing_progress(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._pending_update is not None and self._pending_update.parallel:
                pending = self._pending_update
                for i, task in enumerate(pending.tasks):
                    if i in pending.attached:
                        continue
                    signature = self.coordinator.result(task.sign_id)
                    if signature is None:
                        continue
                    # Verified exactly as in the sequential branch below.
                    # repro-lint: disable=T405
                    dnssec.attach_signature(self.zone, task, signature)
                    self.stats["signatures_completed"] += 1
                    pending.attached.add(i)
                if pending.finished:
                    self._finish_pending_update()
            elif self._pending_update is not None:
                task = self._pending_update.current
                signature = self.coordinator.result(task.sign_id)
                if signature is not None:
                    # coordinator.result only exposes assembled signatures
                    # after the signing protocol verified them against the
                    # zone public key (shares proof-checked or the OptTE
                    # assemble-then-verify path, §3.5).
                    # repro-lint: disable=T405
                    dnssec.attach_signature(self.zone, task, signature)
                    self.stats["signatures_completed"] += 1
                    self._pending_update.index += 1
                    if self._pending_update.finished:
                        self._finish_pending_update()
                    else:
                        self._start_current_task()
                        progressed = False  # _start_current_task loops itself
            elif self._pending_read is not None:
                signature = self.coordinator.result(self._pending_read.task.sign_id)
                if signature is not None:
                    done = self._pending_read
                    self._pending_read = None
                    self._busy = False
                    self.stats["signatures_completed"] += 1
                    if done.cache_key is not None:
                        self._cache_answer(done.cache_key, _CachedAnswer(
                            query_tail=done.query_tail,
                            wire=canonical_response_wire(done.response_wire),
                            signature=signature,
                            owner_names=done.owner_names,
                            volatile=done.volatile,
                        ))
                    self._respond(
                        done.request_id,
                        done.client,
                        done.response_wire,
                        threshold_sig=signature,
                    )
                    self._drain_exec_queue()

    # ------------------------------------------------------------------
    # outgoing plumbing
    # ------------------------------------------------------------------

    def _send_signing(self, outs: List[Tuple[int, SigningMessage]]) -> None:
        for dest, inner in outs:
            envelope = WrapperSigning(inner)
            if dest == -1:  # broadcast to all other replicas
                for peer in range(self.config.n):
                    if peer != self.index:
                        self._send(peer, envelope)
            else:
                self._send(dest, envelope)

    def _send(self, dest: int, msg: object) -> None:
        transformed = self.fault.transform_outgoing(msg, dest)
        if transformed is None:
            return
        self.node.send(dest, transformed)

    def _respond(
        self, rid: str, client: int, wire: bytes, threshold_sig: bytes = b""
    ) -> None:
        # Clients correlate responses by the DNS message id inside the
        # wire (as dig/nsupdate do); the request_id is informational.
        if threshold_sig:
            response: ClientResponse = _SignedClientResponse(
                request_id=rid, wire=wire, replica=self.index, signature=threshold_sig
            )
        else:
            response = ClientResponse(request_id=rid, wire=wire, replica=self.index)
        self._send(client, response)

    def _respond_error(self, client: int, wire: bytes, rcode: int) -> None:
        try:
            query = Message.from_wire(wire)
            response = make_response(query, rcode)
            response_wire = response.to_wire()
        except WireFormatError:
            response_wire = b""
        rid = hashlib.sha256(wire).hexdigest()[:32]
        self._send(
            client,
            ClientResponse(request_id=rid, wire=response_wire, replica=self.index),
        )

    @staticmethod
    def _peek_opcode(wire: bytes) -> Optional[int]:
        if len(wire) < 12:
            return None
        return (struct.unpack_from(">H", wire, 2)[0] >> 11) & 0xF


@dataclass(frozen=True)
class _SignedClientResponse(ClientResponse):
    """Response carrying a threshold signature (ablation A3 only)."""

    signature: bytes = b""
