"""Corrupted-server behaviours for fault-injection experiments.

The paper's prototype can "configure a server to misbehave and to mimic a
corrupted server.  A server that is corrupted in this way inverts all the
bits in its signature share before sending it to the others" (§4.4) — the
behaviour Table 2's ``(4,1)``, ``(7,1)``, ``(7,2)`` rows measure.  This
module implements that behaviour plus the other corruption modes the
tests and ablations use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Set

from repro.broadcast.messages import ClientResponse, WrapperSigning
from repro.crypto.protocols import SigningMessage
from repro.crypto.shoup import SignatureShare


class CorruptionMode(enum.Enum):
    """How a corrupted replica misbehaves."""

    HONEST = "honest"
    #: §4.4 — invert every bit of outgoing signature shares.
    BAD_SHARES = "bad_shares"
    #: Crash fault: the replica stops sending and processing entirely.
    CRASH = "crash"
    #: Ignore client requests (breaks G2 for clients that only contact us).
    MUTE_TO_CLIENTS = "mute_to_clients"
    #: Answer reads from a stale snapshot (the §3.4 replay-style attack
    #: that weak correctness G1' permits but full G1 does not).
    STALE_READS = "stale_reads"


def _invert_bits(value: int, modulus: int) -> int:
    """Invert all bits of a share value within the modulus width."""
    width = modulus.bit_length()
    return (value ^ ((1 << width) - 1)) % modulus


def tampered_zone_share(share):
    """A corrupted replica's view of its zone-key share.

    §4.4's corrupted server "inverts all the bits in its signature share
    before sending it to the others".  We corrupt the *key share* itself,
    which is equivalent for every receiver and additionally means the
    corrupted server cannot quietly assemble valid signatures from its
    own (secretly correct) share — the behaviour Table 2's corruption
    rows exhibit.
    """
    from repro.crypto.shoup import ThresholdKeyShare

    return ThresholdKeyShare(
        index=share.index,
        secret=share.secret ^ ((1 << 64) - 1),
        public=share.public,
    )


@dataclass
class FaultInjector:
    """Outgoing-message filter attached to a corrupted replica."""

    mode: CorruptionMode = CorruptionMode.HONEST
    modulus: int = 0  # zone key modulus, needed for bit inversion
    corrupted_sessions: Set[str] = field(default_factory=set)

    @property
    def is_corrupted(self) -> bool:
        return self.mode is not CorruptionMode.HONEST

    def transform_outgoing(self, msg: object) -> Optional[object]:
        """Rewrite (or swallow) an outgoing message; ``None`` drops it."""
        if self.mode is CorruptionMode.HONEST:
            return msg
        if self.mode is CorruptionMode.CRASH:
            return None
        if self.mode is CorruptionMode.BAD_SHARES:
            return self._corrupt_share(msg)
        if self.mode is CorruptionMode.MUTE_TO_CLIENTS and isinstance(
            msg, ClientResponse
        ):
            return None
        return msg

    def _corrupt_share(self, msg: object) -> object:
        if not isinstance(msg, WrapperSigning):
            return msg
        inner = msg.inner
        if inner.is_final:
            # A corrupted server never helps its peers converge: any final
            # signature it would send out is garbled.
            self.corrupted_sessions.add(inner.sign_id)
            bad_sig = bytes(b ^ 0xFF for b in inner.signature)
            return WrapperSigning(SigningMessage.final(inner.sign_id, bad_sig))
        if not inner.is_share or inner.share is None:
            return msg
        self.corrupted_sessions.add(inner.sign_id)
        bad_share = SignatureShare(
            index=inner.share.index,
            value=_invert_bits(inner.share.value, self.modulus),
            proof=inner.share.proof,
        )
        return WrapperSigning(
            SigningMessage.share_message(inner.sign_id, bad_share)
        )
