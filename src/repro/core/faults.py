"""Corrupted-server behaviours for fault-injection experiments.

The paper's prototype can "configure a server to misbehave and to mimic a
corrupted server.  A server that is corrupted in this way inverts all the
bits in its signature share before sending it to the others" (§4.4) — the
behaviour Table 2's ``(4,1)``, ``(7,1)``, ``(7,2)`` rows measure.  This
module implements that behaviour plus the other corruption modes the
tests, ablations, and the chaos harness use.

The extended palette attacks each of the paper's goals in a targeted way:

* ``EQUIVOCATE`` — a Byzantine leader sends *different* ORDER payloads to
  different replicas (the classic safety attack; quorum intersection must
  keep G1).
* ``MALFORMED_BATCHES`` — a Byzantine gateway garbles the length-prefixed
  batch frames it broadcasts; strict total decoding must make every honest
  replica reach the same verdict (drop the batch) and client retry must
  restore G2.
* ``POISON_STALE`` — a replica records the first signed answer it produced
  for each question and replays it forever, splicing in the current
  message id.  The signature verifies (it is authentic, G3 holds) but the
  data may be stale — exactly the §3.4 replay attack that weak
  correctness G1' permits and the full client's majority vote defeats.
* ``WITHHOLD_SHARES`` — the replica participates in agreement but never
  contributes signing shares or finals, shrinking the honest share pool
  and forcing OptProof/OptTE onto their slow paths.
"""

from __future__ import annotations

import enum
import hashlib
import random
import struct
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Set, Tuple

from repro.broadcast.messages import (
    BATCH_MAGIC,
    AbcInitiate,
    AbcOrder,
    ClientResponse,
    WrapperSigning,
    is_batch_payload,
)
from repro.crypto.protocols import SigningMessage
from repro.crypto.shoup import SignatureShare
from repro.dns.message import Message
from repro.errors import WireFormatError


class CorruptionMode(enum.Enum):
    """How a corrupted replica misbehaves."""

    HONEST = "honest"
    #: §4.4 — invert every bit of outgoing signature shares.
    BAD_SHARES = "bad_shares"
    #: Crash fault: the replica stops sending and processing entirely.
    CRASH = "crash"
    #: Ignore client requests (breaks G2 for clients that only contact us).
    MUTE_TO_CLIENTS = "mute_to_clients"
    #: Answer reads from a stale snapshot (the §3.4 replay-style attack
    #: that weak correctness G1' permits but full G1 does not).
    STALE_READS = "stale_reads"
    #: Byzantine leader: send conflicting ORDER payloads to different
    #: replicas for the same sequence slot.
    EQUIVOCATE = "equivocate"
    #: Byzantine gateway: garble the length-prefixed batch frames so the
    #: strict decoder (and client retry) are exercised end to end.
    MALFORMED_BATCHES = "malformed_batches"
    #: Replay the first signed answer per question with the current
    #: message id spliced in — authentic but possibly stale.
    POISON_STALE = "poison_stale"
    #: Participate in agreement but contribute no signing shares/finals.
    WITHHOLD_SHARES = "withhold_shares"


def _invert_bits(value: int, modulus: int) -> int:
    """Invert all bits of a share value within the modulus width."""
    width = modulus.bit_length()
    return (value ^ ((1 << width) - 1)) % modulus


def _derive_rid(payload: bytes) -> str:
    # Mirrors repro.broadcast.abc.derive_request_id without importing the
    # broadcast machinery into the fault layer.
    return hashlib.sha256(payload).hexdigest()[:32]


def tampered_zone_share(share):
    """A corrupted replica's view of its zone-key share.

    §4.4's corrupted server "inverts all the bits in its signature share
    before sending it to the others".  We corrupt the *key share* itself,
    which is equivalent for every receiver and additionally means the
    corrupted server cannot quietly assemble valid signatures from its
    own (secretly correct) share — the behaviour Table 2's corruption
    rows exhibit.
    """
    from repro.crypto.shoup import ThresholdKeyShare

    return ThresholdKeyShare(
        index=share.index,
        secret=share.secret ^ ((1 << 64) - 1),
        public=share.public,
    )


@dataclass
class FaultInjector:
    """Outgoing-message filter attached to a corrupted replica."""

    mode: CorruptionMode = CorruptionMode.HONEST
    modulus: int = 0  # zone key modulus, needed for bit inversion
    corrupted_sessions: Set[str] = field(default_factory=set)
    #: Misbehaviour-choice RNG seed.  The owning replica derives it from
    #: the scenario seed (see :meth:`derive_seed`) so chaos replays
    #: reproduce the same choices and different scenario seeds explore
    #: different misbehaviour schedules.
    seed: int = 0xFA17
    rng: random.Random = field(init=False, repr=False)
    #: POISON_STALE memory: (qname, qtype) -> first response sent.
    recorded_answers: Dict[Tuple[object, int], ClientResponse] = field(
        default_factory=dict
    )
    stats: Dict[str, int] = field(
        default_factory=lambda: {
            "equivocations": 0,
            "garbled_batches": 0,
            "poisoned_responses": 0,
            "withheld_messages": 0,
        }
    )

    def __post_init__(self) -> None:
        self.rng = random.Random(self.seed)

    @staticmethod
    def derive_seed(scenario_seed: int, replica_index: int) -> int:
        """Mix the scenario seed with the replica index.

        Two corrupted servers in one run make different (but replayable)
        choices; the same scenario seed always reproduces both streams.
        """
        return (scenario_seed << 20) ^ (replica_index << 8) ^ 0xFA17

    def reseed(self, scenario_seed: int, replica_index: int) -> None:
        self.seed = self.derive_seed(scenario_seed, replica_index)
        self.rng = random.Random(self.seed)

    @property
    def is_corrupted(self) -> bool:
        return self.mode is not CorruptionMode.HONEST

    def transform_outgoing(
        self, msg: object, dest: Optional[int] = None
    ) -> Optional[object]:
        """Rewrite (or swallow) an outgoing message; ``None`` drops it.

        ``dest`` lets destination-dependent misbehaviour (equivocation)
        send different replicas different messages.
        """
        if self.mode is CorruptionMode.HONEST:
            return msg
        if self.mode is CorruptionMode.CRASH:
            return None
        if self.mode is CorruptionMode.BAD_SHARES:
            return self._corrupt_share(msg)
        if self.mode is CorruptionMode.MUTE_TO_CLIENTS and isinstance(
            msg, ClientResponse
        ):
            return None
        if self.mode is CorruptionMode.EQUIVOCATE:
            return self._equivocate(msg, dest)
        if self.mode is CorruptionMode.MALFORMED_BATCHES:
            return self._garble_batch(msg)
        if self.mode is CorruptionMode.POISON_STALE:
            return self._poison(msg)
        if self.mode is CorruptionMode.WITHHOLD_SHARES:
            return self._withhold(msg)
        return msg

    def _corrupt_share(self, msg: object) -> object:
        if not isinstance(msg, WrapperSigning):
            return msg
        inner = msg.inner
        if inner.is_final:
            # A corrupted server never helps its peers converge: any final
            # signature it would send out is garbled.
            self.corrupted_sessions.add(inner.sign_id)
            bad_sig = bytes(b ^ 0xFF for b in inner.signature)
            return WrapperSigning(SigningMessage.final(inner.sign_id, bad_sig))
        if not inner.is_share or inner.share is None:
            return msg
        self.corrupted_sessions.add(inner.sign_id)
        bad_share = SignatureShare(
            index=inner.share.index,
            value=_invert_bits(inner.share.value, self.modulus),
            proof=inner.share.proof,
        )
        return WrapperSigning(
            SigningMessage.share_message(inner.sign_id, bad_share)
        )

    # -- extended palette ---------------------------------------------------

    def _equivocate(self, msg: object, dest: Optional[int]) -> object:
        """Byzantine leader: half the replicas get a conflicting ORDER.

        The tampered payload carries a *consistent* payload-derived request
        id, so it passes the per-message sanity check and the attack is
        only stopped where it must be: no slot can gather two prepare
        certificates (quorum intersection), so the epoch stalls and the
        complaint/ABA path takes over.
        """
        if not isinstance(msg, AbcOrder) or dest is None:
            return msg
        if dest % 2 == 0:
            return msg  # even-numbered replicas see the honest ORDER
        payload = msg.payload
        if payload == b"":
            # Digest-mode ORDER: there is no payload to tamper, so the
            # leader equivocates on the request id itself.  Odd replicas
            # chase a payload that does not exist (their pulls are
            # bounded), the slot can never gather two certificates, and
            # the complaint path takes over exactly as below.
            flipped = "0" if msg.request_id[-1] != "0" else "1"
            self.stats["equivocations"] += 1
            return AbcOrder(
                epoch=msg.epoch,
                seq=msg.seq,
                request_id=msg.request_id[:-1] + flipped,
                payload=b"",
            )
        if len(payload) < 5:
            return msg
        tampered = payload[:-1] + bytes([payload[-1] ^ 0xFF])
        self.stats["equivocations"] += 1
        return AbcOrder(
            epoch=msg.epoch,
            seq=msg.seq,
            request_id=_derive_rid(tampered),
            payload=tampered,
        )

    def _garble_batch(self, msg: object) -> object:
        """Byzantine gateway: damage the batch frame it disseminates.

        Each attack targets a different branch of the strict decoder:
        truncation, an inflated entry count, and trailing garbage.  The
        request id is recomputed so the broadcast layer orders the bad
        payload — the point is that every honest replica must *decode* it
        to the same empty batch and drop it deterministically.
        """
        if not isinstance(msg, AbcInitiate) or not is_batch_payload(msg.payload):
            return msg
        payload = msg.payload
        attack = self.rng.randrange(3)
        if attack == 0 and len(payload) > len(BATCH_MAGIC) + 4:
            bad = payload[:-3]
        elif attack == 1:
            offset = len(BATCH_MAGIC)
            (count,) = struct.unpack_from(">I", payload, offset)
            bad = (
                payload[:offset]
                + struct.pack(">I", count + 5)
                + payload[offset + 4 :]
            )
        else:
            bad = payload + b"\xde\xad"
        self.stats["garbled_batches"] += 1
        return AbcInitiate(request_id=_derive_rid(bad), payload=bad)

    def _poison(self, msg: object) -> object:
        """Replay the first signed answer per question, id-spliced.

        This is the strongest stale-data attack available to a single
        corrupted replica: the replayed wire (and, in A3 mode, its
        threshold signature over the id-zeroed form) verifies perfectly —
        G3 holds — but the data predates later updates.  A pragmatic
        client that trusts one gateway accepts it (G1' world); the full
        client's t+1 majority vote rejects it.
        """
        if not isinstance(msg, ClientResponse) or not msg.wire:
            return msg
        try:
            response = Message.from_wire(msg.wire)
        except WireFormatError:
            return msg
        if len(response.questions) != 1:
            return msg
        question = response.questions[0]
        key = (question.name, question.rtype)
        recorded = self.recorded_answers.get(key)
        if recorded is None:
            self.recorded_answers[key] = msg
            return msg
        if recorded.wire[2:] == msg.wire[2:]:
            return msg  # nothing changed yet; the honest answer IS the replay
        poisoned_wire = msg.wire[:2] + recorded.wire[2:]
        self.stats["poisoned_responses"] += 1
        return replace(recorded, request_id=msg.request_id, wire=poisoned_wire)

    def _withhold(self, msg: object) -> Optional[object]:
        """Silently sit out of threshold signing (shares *and* finals).

        Unlike CRASH the replica keeps running atomic broadcast, so it
        still counts toward quorums and causes no epoch churn — the only
        effect is one fewer honest share, which is exactly what pushes
        the optimistic protocols onto their slow paths when combined with
        a bad-share peer.
        """
        if isinstance(msg, WrapperSigning) and (
            msg.inner.is_share or msg.inner.is_final
        ):
            self.stats["withheld_messages"] += 1
            return None
        return msg
