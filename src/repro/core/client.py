"""Clients of the replicated name service.

Two models from the paper:

* :class:`PragmaticClient` (§3.4) — an *unmodified* DNS client: sends each
  request to a single server (the gateway), accepts the response arriving
  from that server, optionally verifies the zone signatures on the data,
  and on timeout retries the next server in round-robin order (this is
  what gives the stronger practical liveness the paper notes).
* :class:`FullClient` (§3.3) — the modified client: sends every request
  to *all* replicas, collects ``n - t`` responses, and accepts the
  majority value, achieving full G1/G2.

Both issue real DNS wire messages (built by the dig/nsupdate-style
helpers) and correlate responses by DNS message id, like real resolvers.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.broadcast.messages import ClientRequest, ClientResponse
from repro.config import ServiceConfig
from repro.crypto.costmodel import CostModel
from repro.crypto.executor import CryptoExecutor
from repro.crypto.protocols import OP_VERIFY_SIGNATURE
from repro.crypto.rsa import RsaPublicKey
from repro.dns import constants as c
from repro.dns import dnssec
from repro.dns.message import Message, RR, make_query, make_update, rrs_to_rrsets
from repro.dns.name import Name
from repro.dns.rdata import KEY, Rdata, SIG
from repro.dns.tsig import TsigKey, sign_message
from repro.errors import DnssecError, InvalidSignature, WireFormatError

Callback = Callable[["CompletedOp"], None]


@dataclass
class CompletedOp:
    """Outcome of one client operation."""

    kind: str                 # "read" / "add" / "delete" / "update"
    msg_id: int
    response: Optional[Message]
    latency: float            # simulated seconds from issue to acceptance
    accepted_from: int        # replica id the accepted response came from
    verified: bool = False    # zone-signature verification result (reads)
    retries: int = 0


@dataclass
class _InFlight:
    kind: str
    wire: bytes
    issued_at: float
    callback: Callback
    target: int                  # replica we are currently waiting on
    retries: int = 0
    timer: Optional[object] = None
    responses: Dict[int, bytes] = field(default_factory=dict)  # full client


class _ClientBase:
    """Shared machinery: building, sending, and tracking DNS requests."""

    def __init__(
        self,
        node,
        config: ServiceConfig,
        replica_ids: List[int],
        zone_origin: Name,
        zone_key: Optional[KEY] = None,
        tsig_key: Optional[TsigKey] = None,
        costs: Optional[CostModel] = None,
        verify_signatures: bool = True,
        id_rng: Optional[random.Random] = None,
        executor: Optional[CryptoExecutor] = None,
    ) -> None:
        self.node = node
        self.config = config
        self.replica_ids = list(replica_ids)
        self.zone_origin = zone_origin
        self.zone_key = zone_key
        self.tsig_key = tsig_key
        self.costs = costs if costs is not None else CostModel()
        self.verify_signatures = verify_signatures
        # Crypto execution plane for answer verification; None verifies
        # inline (identical verdicts — the plane only moves the modexp).
        self.executor = executor
        # DNS message ids are random per RFC practice; a seeded RNG makes
        # them — and everything downstream that hashes the request wire —
        # replayable, which the chaos harness's transcript contract needs.
        self._id_rng = id_rng
        self._inflight: Dict[int, _InFlight] = {}
        self._tsig_clock = 1_000_000
        self.completed: List[CompletedOp] = []
        node.set_handler(self._on_message)

    # -- request builders -------------------------------------------------------

    def _fresh_id(self) -> int:
        while True:
            if self._id_rng is not None:
                msg_id = self._id_rng.randrange(0x10000)
            else:
                msg_id = secrets.randbelow(0x10000)
            if msg_id not in self._inflight:
                return msg_id

    def build_query_wire(self, name: Name, rtype: int) -> Tuple[int, bytes]:
        query = make_query(name, rtype, msg_id=self._fresh_id())
        return query.msg_id, query.to_wire()

    def build_update_wire(self, updates: List[RR], prerequisites: Optional[List[RR]] = None) -> Tuple[int, bytes]:
        update = make_update(self.zone_origin, msg_id=self._fresh_id())
        if prerequisites:
            update.answers.extend(prerequisites)
        update.authority.extend(updates)
        if self.tsig_key is not None:
            self._tsig_clock += 1
            wire = sign_message(update, self.tsig_key, time_signed=self._tsig_clock)
        else:
            wire = update.to_wire()
        return update.msg_id, wire

    # -- public operations ----------------------------------------------------------

    def query(self, name: Name, rtype: int, callback: Callback) -> int:
        """dig-style read request."""
        msg_id, wire = self.build_query_wire(name, rtype)
        self._issue("read", msg_id, wire, callback)
        return msg_id

    def add_record(
        self,
        name: Name,
        rtype: int,
        ttl: int,
        rdata: Rdata,
        callback: Callback,
    ) -> int:
        """nsupdate-style add of a single record."""
        rr = RR(name, rtype, c.CLASS_IN, ttl, rdata)
        msg_id, wire = self.build_update_wire([rr])
        self._issue("add", msg_id, wire, callback)
        return msg_id

    def delete_record(
        self, name: Name, rtype: int, rdata: Rdata, callback: Callback
    ) -> int:
        rr = RR(name, rtype, c.CLASS_NONE, 0, rdata)
        msg_id, wire = self.build_update_wire([rr])
        self._issue("delete", msg_id, wire, callback)
        return msg_id

    def delete_name(self, name: Name, callback: Callback) -> int:
        """nsupdate-style delete of all records at a name."""
        rr = RR(name, c.TYPE_ANY, c.CLASS_ANY, 0, None)
        msg_id, wire = self.build_update_wire([rr])
        self._issue("delete", msg_id, wire, callback)
        return msg_id

    def send_update(self, update: Message, callback: Callback) -> int:
        """Send a fully custom UPDATE message (prerequisites included)."""
        if self.tsig_key is not None:
            self._tsig_clock += 1
            wire = sign_message(update, self.tsig_key, time_signed=self._tsig_clock)
        else:
            wire = update.to_wire()
        self._issue("update", update.msg_id, wire, callback)
        return update.msg_id

    # -- response verification --------------------------------------------------------

    def _verify_response(self, response: Message) -> bool:
        """Check zone signatures on the answer RRsets (DNSSEC client role)."""
        if self.zone_key is None or response.opcode != c.OPCODE_QUERY:
            return False
        rrsets = rrs_to_rrsets(response.answers)
        data_sets = [r for r in rrsets if r.rtype != c.TYPE_SIG]
        sig_sets = {
            (r.name, rd.type_covered): rd
            for r in rrsets
            if r.rtype == c.TYPE_SIG
            for rd in r
            if isinstance(rd, SIG)
        }
        if not data_sets:
            return False
        for rrset in data_sets:
            sig = sig_sets.get((rrset.name, rrset.rtype))
            if sig is None:
                return False
            try:
                dnssec.verify_rrset(rrset, sig, self.zone_key)
            except DnssecError:
                return False
        return True

    def _verify_threshold_signature(self, msg: ClientResponse) -> bool:
        """Verify a threshold signature over the whole response (A3 mode).

        The signature covers the response wire with its message id zeroed
        (see :func:`repro.core.replica.canonical_response_wire`), so one
        signing round vouches for every repetition of the question.  The
        assembled signature is a plain RSA signature under the zone key.
        """
        signature = getattr(msg, "signature", b"")
        if not signature or self.zone_key is None:
            return False
        modulus, exponent = self.zone_key.rsa_parameters()
        self.node.charge(self.costs.crypto_cost(OP_VERIFY_SIGNATURE))
        key = RsaPublicKey(modulus=modulus, exponent=exponent)
        data = b"\x00\x00" + msg.wire[2:]
        if self.executor is not None:
            return self.executor.rsa_verify(key, data, signature)
        try:
            key.verify(data, signature)
        except InvalidSignature:
            return False
        return True

    # -- plumbing -----------------------------------------------------------------------

    def _issue(self, kind: str, msg_id: int, wire: bytes, callback: Callback) -> None:
        raise NotImplementedError

    def _on_message(self, sender: int, msg: object) -> None:
        if not isinstance(msg, ClientResponse):
            return
        try:
            response = Message.from_wire(msg.wire) if msg.wire else None
        except WireFormatError:
            return
        if response is None:
            return
        self._handle_response(sender, msg, response)

    def _handle_response(
        self, sender: int, msg: ClientResponse, response: Message
    ) -> None:
        raise NotImplementedError

    def _finish(
        self,
        flight: _InFlight,
        msg_id: int,
        response: Optional[Message],
        accepted_from: int,
        verified: bool,
    ) -> None:
        if flight.timer is not None:
            flight.timer.cancel()  # type: ignore[attr-defined]
        self._inflight.pop(msg_id, None)
        op = CompletedOp(
            kind=flight.kind,
            msg_id=msg_id,
            response=response,
            latency=self.node.now - flight.issued_at,
            accepted_from=accepted_from,
            verified=verified,
            retries=flight.retries,
        )
        self.completed.append(op)
        flight.callback(op)


class PragmaticClient(_ClientBase):
    """Unmodified client of §3.4: one server, one response, retry on timeout."""

    def __init__(self, *args, gateway: int = 0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._gateway_index = gateway  # index into replica_ids

    @property
    def gateway(self) -> int:
        return self.replica_ids[self._gateway_index % len(self.replica_ids)]

    def _issue(self, kind: str, msg_id: int, wire: bytes, callback: Callback) -> None:
        self.node.charge(self.costs.client_overhead)
        target = self.gateway
        flight = _InFlight(
            kind=kind,
            wire=wire,
            issued_at=self.node.now,
            callback=callback,
            target=target,
        )
        self._inflight[msg_id] = flight
        self._transmit(msg_id, flight)

    def _transmit(self, msg_id: int, flight: _InFlight) -> None:
        request = ClientRequest(request_id=f"req-{msg_id}", wire=flight.wire)
        self.node.send(flight.target, request)
        flight.timer = self.node.schedule_timer(
            self.config.client_timeout, lambda: self._on_timeout(msg_id)
        )

    def _on_timeout(self, msg_id: int) -> None:
        """Round-robin to the next authoritative server, like dig/nsupdate."""
        flight = self._inflight.get(msg_id)
        if flight is None:
            return
        flight.retries += 1
        current = self.replica_ids.index(flight.target)
        flight.target = self.replica_ids[(current + 1) % len(self.replica_ids)]
        self._transmit(msg_id, flight)

    def _handle_response(
        self, sender: int, msg: ClientResponse, response: Message
    ) -> None:
        flight = self._inflight.get(response.msg_id)
        if flight is None:
            return
        if sender != flight.target:
            return  # source-address check: only the queried server counts
        verified = False
        if self.verify_signatures and flight.kind == "read":
            verified = self._verify_response(response)
            if not verified:
                # A3 mode: the whole response carries one threshold
                # signature instead of per-RRset zone signatures.
                verified = self._verify_threshold_signature(msg)
        self._finish(flight, response.msg_id, response, sender, verified)


class FullClient(_ClientBase):
    """Modified client of §3.3: multicast the request, majority-vote."""

    def _issue(self, kind: str, msg_id: int, wire: bytes, callback: Callback) -> None:
        self.node.charge(self.costs.client_overhead)
        flight = _InFlight(
            kind=kind,
            wire=wire,
            issued_at=self.node.now,
            callback=callback,
            target=-1,
        )
        self._inflight[msg_id] = flight
        request = ClientRequest(request_id=f"req-{msg_id}", wire=wire)
        for replica in self.replica_ids:
            self.node.send(replica, request)

    def _handle_response(
        self, sender: int, msg: ClientResponse, response: Message
    ) -> None:
        flight = self._inflight.get(response.msg_id)
        if flight is None:
            return
        if sender in flight.responses:
            return
        flight.responses[sender] = msg.wire
        if len(flight.responses) < self.config.quorum:
            return
        # Majority vote over the exact response bytes.
        counts: Dict[bytes, List[int]] = {}
        for replica, wire in flight.responses.items():
            counts.setdefault(wire, []).append(replica)
        wire, voters = max(counts.items(), key=lambda item: len(item[1]))
        if len(voters) < self.config.t + 1:
            return  # no value represents t+1 replicas yet; wait for more
        winner = Message.from_wire(wire)
        verified = False
        if self.verify_signatures and flight.kind == "read":
            verified = self._verify_response(winner)
        self._finish(flight, response.msg_id, winner, voters[0], verified)
