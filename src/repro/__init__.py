"""Secure Distributed DNS — reproduction of Cachin & Samar (DSN 2004).

A Byzantine-fault-tolerant, intrusion-tolerant name service for a DNS
zone: ``n`` authoritative servers replicated as state machines over an
asynchronous optimistic atomic broadcast, with the DNSSEC zone key
``(n, t)``-shared via Shoup threshold RSA so dynamic updates are signed
online without the key ever existing at a single server.

Public entry points:

* :class:`repro.config.ServiceConfig` — deployment parameters.
* :class:`repro.core.service.ReplicatedNameService` — a complete
  simulated deployment with a synchronous experiment API.
* :class:`repro.net.local.AsyncNameService` — the same service running
  live on asyncio.
* :mod:`repro.crypto` — threshold RSA (dealer, shares, proofs) and the
  BASIC/OptProof/OptTE signing protocols.
* :mod:`repro.dns` — the full DNS substrate (wire format, zones,
  authoritative serving, RFC 2136 updates, DNSSEC, TSIG, resolver).
* :mod:`repro.broadcast` — reliable broadcast, threshold-coin Byzantine
  agreement, and the optimistic atomic broadcast.
* ``python -m repro.cli`` — keygen / signzone / verifyzone / dig /
  nsupdate / bench.
"""

from repro.config import ServiceConfig
from repro.errors import ReproError

__version__ = "1.0.0"
__paper__ = (
    "Christian Cachin and Asad Samar, 'Secure Distributed DNS', "
    "Proc. International Conference on Dependable Systems and Networks "
    "(DSN 2004)"
)

__all__ = ["ServiceConfig", "ReproError", "__version__", "__paper__"]
